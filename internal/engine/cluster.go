package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// ShardRange returns the row range [lo, hi) that shard i of n serves in
// an evenly split domain of rows entries. Every layer that derives the
// split — Replica's in-process shard bounds, Cluster's assignment, and a
// shard node started with `pirserver -shardnode i/n` — must compute it
// through this one function: a node whose held slice diverges from the
// front's assignment is only caught at startup by the RangeHolder check,
// and two layers quietly disagreeing on the rounding is exactly the kind
// of drift that turns into garbage shares.
func ShardRange(rows, i, n int) (lo, hi int) {
	return i * rows / n, (i + 1) * rows / n
}

// ClusterShard is one member of a Cluster: a backend that can answer row
// sub-ranges (an in-process Replica, or a shardnet.Client speaking to a
// node in another process or on another machine) plus a name for errors —
// when a shard dies mid-batch the operator needs to know WHICH machine.
type ClusterShard struct {
	Backend RangeBackend
	// Name identifies the shard in errors (typically its address for
	// remote shards); empty defaults to "shard i".
	Name string
}

// ShardError is the named error a Cluster returns when one shard's
// sub-range evaluation fails: it identifies the shard by index, name and
// assigned row range, and wraps the underlying cause (so errors.Is sees
// context.DeadlineExceeded through it when a slow shard blows the
// caller's deadline, and connection errors when a shard node dies).
type ShardError struct {
	// Shard is the failing shard's index in the cluster.
	Shard int
	// Name is the shard's configured name (address for remote shards).
	Name string
	// Lo, Hi is the row range the shard was asked to evaluate.
	Lo, Hi int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("engine: cluster shard %d (%s) rows [%d,%d): %v", e.Shard, e.Name, e.Lo, e.Hi, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Cluster is a Backend that splits the row domain across N shard backends
// so one logical replica can span processes and machines: a key batch
// fans out concurrently as AnswerRange calls over contiguous row ranges,
// and the per-shard partial sums merge lane-wise mod 2^32 — by the
// linearity of the shares, bit-identical to a single-process Replica over
// the same table. Construction fails loudly on any configuration the
// merge would silently corrupt: disagreeing table shapes, PRFs,
// early-termination depths or parties across shards (BackendInfo), or a
// shard assigned rows it does not hold (RangeHolder).
type Cluster struct {
	shards []ClusterShard
	// bounds[i] .. bounds[i+1] is shard i's row range, the same even
	// split Replica uses for its in-process shards.
	bounds []int
	rows   int
	lanes  int

	// pinned configuration, known when at least one shard reports
	// BackendInfo (all reporting shards must agree); ValidateKey uses it
	// to reject bad keys at the front door. Shards without BackendInfo
	// (wrappers, test stubs) neither pin nor un-pin: they are trusted to
	// match the configuration their siblings advertise.
	prgName string
	early   int
	party   int
	pinned  bool
}

// NewCluster assembles a cluster over the given shards; shard i serves
// rows [i·rows/N, (i+1)·rows/N) of the common table domain.
func NewCluster(shards ...ClusterShard) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, errors.New("engine: cluster needs at least one shard")
	}
	c := &Cluster{shards: make([]ClusterShard, len(shards))}
	copy(c.shards, shards)
	for i := range c.shards {
		if c.shards[i].Backend == nil {
			return nil, fmt.Errorf("engine: cluster shard %d has no backend", i)
		}
		if c.shards[i].Name == "" {
			c.shards[i].Name = fmt.Sprintf("shard %d", i)
		}
	}
	c.rows, c.lanes = c.shards[0].Backend.Shape()
	if c.rows <= 0 || c.lanes <= 0 {
		return nil, fmt.Errorf("engine: cluster shard 0 (%s) reports an invalid %d×%d table", c.shards[0].Name, c.rows, c.lanes)
	}
	for i, sh := range c.shards {
		rows, lanes := sh.Backend.Shape()
		if rows != c.rows || lanes != c.lanes {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) serves a %d×%d table, shard 0 (%s) a %d×%d one — all shards must replicate the same domain",
				i, sh.Name, rows, lanes, c.shards[0].Name, c.rows, c.lanes)
		}
	}
	if len(c.shards) > c.rows {
		return nil, fmt.Errorf("engine: cluster of %d shards over a table of only %d rows", len(c.shards), c.rows)
	}
	c.bounds = make([]int, len(c.shards)+1)
	for i := range c.shards {
		c.bounds[i], c.bounds[i+1] = ShardRange(c.rows, i, len(c.shards))
	}
	// Every pinned fact must agree pairwise before partial shares may be
	// merged; name both values and both shards in the rejection.
	first := -1
	for i, sh := range c.shards {
		info, ok := sh.Backend.(BackendInfo)
		if !ok {
			continue
		}
		if first < 0 {
			first = i
			c.prgName, c.early, c.party = info.PRGName(), info.EarlyBits(), info.Party()
			continue
		}
		ref := c.shards[first]
		if got := info.PRGName(); got != c.prgName {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) serves prg=%s, shard %d (%s) prg=%s — shards must share one PRF",
				i, sh.Name, got, first, ref.Name, c.prgName)
		}
		if got := info.EarlyBits(); got != c.early {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) serves early-termination depth %d, shard %d (%s) depth %d — shards must share one depth",
				i, sh.Name, got, first, ref.Name, c.early)
		}
		if got := info.Party(); got != c.party {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) computes party %d shares, shard %d (%s) party %d — a cluster is one party",
				i, sh.Name, got, first, ref.Name, c.party)
		}
	}
	c.pinned = first >= 0
	for i, sh := range c.shards {
		holder, ok := sh.Backend.(RangeHolder)
		if !ok {
			continue
		}
		lo, hi := holder.HeldRange()
		if lo < 0 || hi > c.rows || lo >= hi {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) claims to hold an invalid row range [%d,%d) of %d rows", i, sh.Name, lo, hi, c.rows)
		}
		if c.bounds[i] < lo || c.bounds[i+1] > hi {
			return nil, fmt.Errorf("engine: cluster shard %d (%s) is assigned rows [%d,%d) but holds only [%d,%d) — start the node with the matching shard index/count",
				i, sh.Name, c.bounds[i], c.bounds[i+1], lo, hi)
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Bounds returns the row split: shard i serves [Bounds()[i], Bounds()[i+1]).
func (c *Cluster) Bounds() []int { return append([]int(nil), c.bounds...) }

// Shape implements Backend.
func (c *Cluster) Shape() (rows, lanes int) { return c.rows, c.lanes }

// Counters implements Backend: the lane-wise aggregate over all shards
// (PRF blocks, traffic and launches are additive across the split;
// PeakMemBytes is the sum of per-shard peaks, an upper bound on any
// single machine's footprint).
func (c *Cluster) Counters() gpu.Stats {
	var total gpu.Stats
	for _, sh := range c.shards {
		s := sh.Backend.Counters()
		total.PRFBlocks += s.PRFBlocks
		total.ReadBytes += s.ReadBytes
		total.WriteBytes += s.WriteBytes
		total.Launches += s.Launches
		total.PeakMemBytes += s.PeakMemBytes
	}
	return total
}

// Answer implements Backend: the batch fans out to every shard's row range
// concurrently, and the partial shares merge lane-wise mod 2^32. The first
// shard failure cancels the rest of the fan-out and comes back as a
// *ShardError naming the shard; a failure induced by the caller's own ctx
// keeps the ctx error in the chain (errors.Is sees DeadlineExceeded).
func (c *Cluster) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	if len(keys) == 0 {
		return nil, errors.New("engine: empty key batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partials := make([][][]uint32, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	wg.Add(len(c.shards))
	for i := range c.shards {
		go func(i int) {
			defer wg.Done()
			a, err := c.shards[i].Backend.AnswerRange(ctx, keys, c.bounds[i], c.bounds[i+1])
			if err != nil {
				errs[i] = err
				cancel() // stop paying for partials the batch can no longer use
				return
			}
			partials[i] = a
		}(i)
	}
	wg.Wait()
	// Prefer the shard that actually failed over siblings that merely saw
	// the cancellation it triggered.
	fail := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if fail < 0 || (errors.Is(errs[fail], context.Canceled) && !errors.Is(err, context.Canceled)) {
			fail = i
		}
	}
	if fail >= 0 {
		return nil, &ShardError{Shard: fail, Name: c.shards[fail].Name, Lo: c.bounds[fail], Hi: c.bounds[fail+1], Err: errs[fail]}
	}
	answers := strategy.NewAnswers(len(keys), c.lanes)
	for i, part := range partials {
		if len(part) != len(keys) {
			return nil, &ShardError{Shard: i, Name: c.shards[i].Name, Lo: c.bounds[i], Hi: c.bounds[i+1],
				Err: fmt.Errorf("engine: %d partial shares for %d keys", len(part), len(keys))}
		}
		for q := range answers {
			if len(part[q]) != c.lanes {
				return nil, &ShardError{Shard: i, Name: c.shards[i].Name, Lo: c.bounds[i], Hi: c.bounds[i+1],
					Err: fmt.Errorf("engine: partial share %d has %d lanes, table has %d", q, len(part[q]), c.lanes)}
			}
			for l := range answers[q] {
				answers[q][l] += part[q][l]
			}
		}
	}
	return answers, nil
}

// Update implements Backend: the write routes to the shard that serves the
// row (the only shard whose answers ever read it).
func (c *Cluster) Update(row uint64, vals []uint32) error {
	if row >= uint64(c.rows) {
		return fmt.Errorf("engine: update row %d outside table of %d rows", row, c.rows)
	}
	if len(vals) != c.lanes {
		return fmt.Errorf("engine: update has %d lanes, table rows have %d", len(vals), c.lanes)
	}
	i := 0
	for int(row) >= c.bounds[i+1] {
		i++
	}
	if err := c.shards[i].Backend.Update(row, vals); err != nil {
		return &ShardError{Shard: i, Name: c.shards[i].Name, Lo: c.bounds[i], Hi: c.bounds[i+1], Err: err}
	}
	return nil
}

// ValidateKey implements KeyValidator when the shard set pins a
// configuration (at least one shard reported BackendInfo): the key must
// unmarshal, carry the cluster's party, be scalar, and match the domain's
// tree depth and the pinned early-termination depth — the same checks
// Replica.ValidateKey runs, performed at the cluster front so a bad key
// fails its own request before any network fan-out. Without a pinned
// configuration it accepts everything and leaves rejection to the shards.
func (c *Cluster) ValidateKey(raw []byte) error {
	if !c.pinned {
		return nil
	}
	prefix := func() string {
		return fmt.Sprintf("engine cluster (prg=%s, key wire v%d)", c.prgName, dpf.WireVersion(raw))
	}
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	if err := validatePinnedKey(&k, c.party, dpf.DomainBits(c.rows), c.early); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	return nil
}

// PRGName implements BackendInfo when pinned ("" otherwise).
func (c *Cluster) PRGName() string { return c.prgName }

// EarlyBits implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) EarlyBits() int { return c.early }

// Party implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) Party() int { return c.party }

// Pinned reports whether any shard exposed its configuration, i.e.
// whether ValidateKey and the BackendInfo accessors are authoritative.
func (c *Cluster) Pinned() bool { return c.pinned }

// Close closes every shard backend that is closeable (remote shard
// clients); in-process replicas have nothing to close.
func (c *Cluster) Close() error {
	var first error
	for _, sh := range c.shards {
		if closer, ok := sh.Backend.(io.Closer); ok {
			if err := closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

var _ Backend = (*Cluster)(nil)
var _ KeyValidator = (*Cluster)(nil)
