package engine

import (
	"context"
	"fmt"

	"gpudpf/internal/store"
)

// RowWrite is one row overwrite in an update batch (re-exported from
// internal/store so backends and their consumers share one type without
// every layer importing the store directly).
type RowWrite = store.RowWrite

// EpochBackend is a Backend whose table is epoch-versioned: updates
// install whole new epochs (readers pinned to the old epoch are never
// blocked or torn), batches of row writes land atomically, and the
// two-phase Prepare/Commit/Abort form lets a coordinator — engine.Cluster
// — install one epoch across many shards all-or-nothing. engine.Replica
// implements it over its store.Store; shardnet.Client implements it over
// the wire.
type EpochBackend interface {
	Backend
	// Epoch returns the backend's current effective table epoch (aborted
	// epochs count: they are burned, never reissued).
	Epoch(ctx context.Context) (uint64, error)
	// UpdateBatch installs the writes atomically as the next epoch and
	// returns it. Concurrent Answers keep their pinned snapshot.
	UpdateBatch(ctx context.Context, writes []RowWrite) (uint64, error)
	// PrepareUpdate stages the writes as the given epoch (which must lie
	// above the backend's effective epoch), invisible to readers until
	// CommitUpdate.
	PrepareUpdate(ctx context.Context, epoch uint64, writes []RowWrite) error
	// CommitUpdate installs the staged epoch.
	CommitUpdate(ctx context.Context, epoch uint64) error
	// AbortUpdate undoes the epoch whatever phase it reached: it drops a
	// staged epoch, rolls back a committed current epoch to its
	// predecessor, and no-ops when the backend never saw the epoch —
	// idempotent on purpose, so a coordinator can fan it everywhere
	// after a partial failure without tracking who got how far.
	AbortUpdate(ctx context.Context, epoch uint64) error
}

// EpochRangeBackend is a RangeBackend that reports which table epoch each
// range evaluation ran against. A Cluster uses it to refuse merging
// partial shares computed at different epochs — the check that makes
// mixed-epoch answers impossible rather than merely unlikely.
type EpochRangeBackend interface {
	RangeBackend
	// AnswerRangeEpoch is AnswerRange plus the epoch of the snapshot the
	// partials were computed against. ok is false when the epoch is
	// unknown (a remote node fronting a backend that is not
	// epoch-versioned); such partials merge unchecked, exactly like a
	// backend that does not implement this interface at all.
	AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) (answers [][]uint32, epoch uint64, ok bool, err error)
}

// Epoch implements EpochBackend: the replica's current effective table
// epoch.
func (r *Replica) Epoch(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return r.st.Epoch(), nil
}

// validateRowWrites checks an update batch against a table shape with
// engine-level error naming — the one validator behind Replica and
// Cluster batch updates, so the two front doors can never drift in what
// they accept or how they explain a rejection. (The store's own
// validation runs again under its lock.)
func validateRowWrites(writes []RowWrite, rows, lanes int) error {
	for i, w := range writes {
		if w.Row >= uint64(rows) {
			return fmt.Errorf("engine: update %d targets row %d outside table of %d rows", i, w.Row, rows)
		}
		if len(w.Vals) != lanes {
			return fmt.Errorf("engine: update %d (row %d) has %d lanes, table rows have %d", i, w.Row, len(w.Vals), lanes)
		}
	}
	return nil
}

// UpdateBatch implements EpochBackend: the writes land atomically as one
// new epoch — an Answer observes all of them or none, never a torn subset.
func (r *Replica) UpdateBatch(ctx context.Context, writes []RowWrite) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := validateRowWrites(writes, r.rows, r.lanes); err != nil {
		return 0, err
	}
	epoch, err := r.st.Apply(writes)
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	return epoch, nil
}

// PrepareUpdate implements EpochBackend.
func (r *Replica) PrepareUpdate(ctx context.Context, epoch uint64, writes []RowWrite) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := validateRowWrites(writes, r.rows, r.lanes); err != nil {
		return err
	}
	if err := r.st.Prepare(epoch, writes); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// CommitUpdate implements EpochBackend.
func (r *Replica) CommitUpdate(ctx context.Context, epoch uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.st.Commit(epoch); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// AbortUpdate implements EpochBackend.
func (r *Replica) AbortUpdate(ctx context.Context, epoch uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.st.Abort(epoch); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}
