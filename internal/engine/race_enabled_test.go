//go:build race

package engine

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation allocates and defeats sync.Pool reuse — the
// allocation-count tests are skipped there (the uninstrumented build
// enforces them).
const raceEnabled = true
