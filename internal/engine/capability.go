package engine

import (
	"context"
	"io"
)

// Capability probes.
//
// A Backend's optional capabilities (range evaluation, epoch coordination,
// snapshot transfer, …) are separate interfaces, and the cluster, healer,
// and wire layers used to probe for them with bare type assertions
// scattered across call sites. These helpers consolidate the probes behind
// one named, documented function per capability: call sites read as
// `if eb, ok := engine.AsEpoch(be); ok { … }`, greps for a capability's
// adopters hit one symbol, and a future wrapper backend that wants to
// forward capabilities has a single checklist of what to forward.
//
// Each probe is a plain type assertion — no unwrapping or delegation
// magic: a wrapper that does not re-implement a capability does not have
// it, which is exactly right for share-merging correctness (a wrapper
// that, say, re-orders batches must decide explicitly whether range
// partials still merge).

// AsRange probes b for range evaluation (AnswerRange) — the capability a
// Cluster needs to give b a row sub-range of the domain.
func AsRange(b Backend) (RangeBackend, bool) {
	rb, ok := b.(RangeBackend)
	return rb, ok
}

// AsEpoch probes b for coordinated epoch updates
// (Prepare/Commit/Abort/Epoch) — the capability the cluster update
// handshake and the healer's wire fallback need.
func AsEpoch(b Backend) (EpochBackend, bool) {
	eb, ok := b.(EpochBackend)
	return eb, ok
}

// AsEpochRange probes b for epoch-tagged range evaluation
// (AnswerRangeEpoch) — what lets a Cluster refuse to merge partial shares
// computed against different table epochs.
func AsEpochRange(b Backend) (EpochRangeBackend, bool) {
	eb, ok := b.(EpochRangeBackend)
	return eb, ok
}

// AsInfo probes b for its pinned serving configuration (PRF, early bits,
// party) — the facts two backends must agree on before their shares can
// be merged.
func AsInfo(b Backend) (BackendInfo, bool) {
	bi, ok := b.(BackendInfo)
	return bi, ok
}

// AsRangeHolder probes b for an authoritative held row range — what a
// Cluster checks a shard assignment against.
func AsRangeHolder(b Backend) (RangeHolder, bool) {
	rh, ok := b.(RangeHolder)
	return rh, ok
}

// AsKeyValidator probes b for standalone key validation — what a batching
// front door uses to reject a bad key at its own request instead of
// failing every co-batched request.
func AsKeyValidator(b Backend) (KeyValidator, bool) {
	kv, ok := b.(KeyValidator)
	return kv, ok
}

// AsPinger probes b for a cheap liveness check — what the health prober
// uses before re-admitting a cooled-down member.
func AsPinger(b Backend) (Pinger, bool) {
	p, ok := b.(Pinger)
	return p, ok
}

// AsSnapshotSource probes b for snapshot export — the donor side of
// healing.
func AsSnapshotSource(b Backend) (SnapshotSource, bool) {
	s, ok := b.(SnapshotSource)
	return s, ok
}

// AsSnapshotSink probes b for snapshot import — the receiving side of
// healing; members without it heal through the epoch-update RPCs.
func AsSnapshotSink(b Backend) (SnapshotSink, bool) {
	s, ok := b.(SnapshotSink)
	return s, ok
}

// AsCloser probes b for an owned connection or resource to release when a
// cluster built with OwnMembers shuts down.
func AsCloser(b Backend) (io.Closer, bool) {
	c, ok := b.(io.Closer)
	return c, ok
}

// BatchUpdater applies a row batch as one atomic table epoch. It is the
// narrow slice of EpochBackend a serving front needs: a Replica installs
// the epoch on its own store, a Cluster drives the prepare/commit
// handshake across its members — the cluster itself is a BatchUpdater
// without being a full EpochBackend (it coordinates the handshake, it
// does not participate in one).
type BatchUpdater interface {
	UpdateBatch(ctx context.Context, writes []RowWrite) (uint64, error)
}

// AsBatchUpdater probes b for atomic batch updates — what the serving
// front door forwards wire update ops to.
func AsBatchUpdater(b Backend) (BatchUpdater, bool) {
	u, ok := b.(BatchUpdater)
	return u, ok
}

// EpochRetryCounter reports how many answer batches a backend re-fanned
// because their partial shares straddled an update commit (the cluster's
// ErrMixedEpoch retry path). Single replicas never re-fan and simply do
// not have the capability.
type EpochRetryCounter interface {
	EpochRetries() uint64
}

// AsEpochRetries probes b for the mixed-epoch re-fan counter — what the
// serving front door surfaces to the load harness so epoch-retry cost is
// observable under real traffic.
func AsEpochRetries(b Backend) (EpochRetryCounter, bool) {
	c, ok := b.(EpochRetryCounter)
	return c, ok
}
