// Package netsim models the client↔server network for the latency and
// communication budgets the paper evaluates under (§5.1: <300 KB and
// <300 ms per inference; §5.3 estimates network latency at 4G's 60 Mbit/s).
package netsim

import "time"

// Link is a symmetric client↔server network path.
type Link struct {
	// Name is a human-readable label.
	Name string
	// BandwidthBitsPerSec is the usable throughput in bits/second.
	BandwidthBitsPerSec float64
	// RTT is the round-trip propagation latency.
	RTT time.Duration
}

// FourG returns the paper's 4G model: 60 Mbit/s ([1] in the paper).
func FourG() Link {
	return Link{Name: "4G", BandwidthBitsPerSec: 60e6, RTT: 50 * time.Millisecond}
}

// WiFi returns a home broadband/WiFi model.
func WiFi() Link {
	return Link{Name: "WiFi", BandwidthBitsPerSec: 200e6, RTT: 15 * time.Millisecond}
}

// LAN returns a datacenter-adjacent model (useful to isolate compute time).
func LAN() Link {
	return Link{Name: "LAN", BandwidthBitsPerSec: 10e9, RTT: 500 * time.Microsecond}
}

// TransferTime is the serialization delay for a payload of the given size.
func (l Link) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes*8) / l.BandwidthBitsPerSec
	return time.Duration(sec * float64(time.Second))
}

// RoundTrip is the modeled latency of one request/response exchange: one
// RTT plus both payloads' serialization delays. The two PIR servers are
// queried in parallel, so a two-server exchange still costs one RoundTrip
// of the larger payload pair.
func (l Link) RoundTrip(upBytes, downBytes int64) time.Duration {
	return l.RTT + l.TransferTime(upBytes) + l.TransferTime(downBytes)
}
