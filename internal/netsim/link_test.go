package netsim

import (
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := FourG()
	// 300 KB at 60 Mbit/s = 300·1000·8 / 60e6 = 40ms (paper's comm budget
	// fits comfortably in the latency budget).
	got := l.TransferTime(300_000)
	want := 40 * time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("300KB over 4G = %v, want ≈%v", got, want)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-5) != 0 {
		t.Error("non-positive payloads should cost 0")
	}
}

func TestRoundTrip(t *testing.T) {
	l := LAN()
	rt := l.RoundTrip(1000, 1000)
	if rt <= l.RTT {
		t.Error("round trip should exceed bare RTT")
	}
	if rt != l.RTT+l.TransferTime(1000)+l.TransferTime(1000) {
		t.Error("round trip should be RTT + both transfers")
	}
}

func TestPresetsOrdering(t *testing.T) {
	if !(FourG().BandwidthBitsPerSec < WiFi().BandwidthBitsPerSec &&
		WiFi().BandwidthBitsPerSec < LAN().BandwidthBitsPerSec) {
		t.Error("presets should order 4G < WiFi < LAN in bandwidth")
	}
	if !(FourG().RTT > WiFi().RTT && WiFi().RTT > LAN().RTT) {
		t.Error("presets should order 4G > WiFi > LAN in RTT")
	}
}
