package backoff

import (
	"testing"
	"time"
)

// Same (policy, seed) must yield the same schedule — the shardnet redial
// tests rely on this determinism.
func TestDeterministicSchedule(t *testing.T) {
	pol := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	a, b := New(pol, 42), New(pol, 42)
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: %v != %v with identical seeds", i, da, db)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	pol := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	a, b := New(pol, 1), New(pol, 2)
	same := 0
	for i := 0; i < 8; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGrowthAndCap(t *testing.T) {
	pol := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	b := New(pol, 0)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("step %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset: got %v, want 10ms", got)
	}
}

func TestJitterBounds(t *testing.T) {
	pol := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.5}
	b := New(pol, 7)
	for i := 0; i < 100; i++ {
		d := b.Next()
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("step %d: delay %v outside [50ms,150ms]", i, d)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	b := New(Policy{}, 3)
	if d := b.Next(); d <= 0 {
		t.Fatalf("zero policy produced non-positive delay %v", d)
	}
}
