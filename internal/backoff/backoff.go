// Package backoff implements seeded exponential backoff with jitter.
//
// Both the shardnet client (redialing a dead node) and the engine cluster
// (cooling down a tripped replica-group member before probing it) need the
// same discipline: wait a little, then a lot, then cap, and never march in
// lockstep with every other waiter hammering the same recovering node. The
// jitter source is a math/rand/v2 PCG seeded by the caller, so tests get
// reproducible schedules and production callers get decorrelated ones by
// seeding from something unique (an address hash, a member index).
//
// A Backoff is NOT safe for concurrent use; callers guard it with whatever
// lock already protects the failure state it is attached to.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Policy describes a backoff schedule. The zero value is not useful; use
// Default() or fill every field.
type Policy struct {
	// Base is the first delay returned by Next after a Reset.
	Base time.Duration
	// Max caps the pre-jitter delay. Jitter may push the returned value
	// up to Max*(1+Jitter).
	Max time.Duration
	// Factor multiplies the delay after each Next call. Values <= 1 are
	// treated as 2.
	Factor float64
	// Jitter is the fraction of the delay added or subtracted uniformly
	// at random: the returned delay is d*(1-Jitter) .. d*(1+Jitter).
	// Values outside [0,1) are clamped into it.
	Jitter float64
}

// Default returns the policy used by the shardnet client and the cluster
// health prober: 50ms doubling to a 5s cap with ±20% jitter.
func Default() Policy {
	return Policy{Base: 50 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.2}
}

// Backoff produces successive delays following a Policy.
type Backoff struct {
	pol Policy
	rng *rand.Rand
	cur time.Duration
}

// New returns a Backoff over pol whose jitter stream is seeded by seed.
// The same (pol, seed) pair always yields the same delay sequence.
func New(pol Policy, seed uint64) *Backoff {
	if pol.Base <= 0 {
		pol.Base = Default().Base
	}
	if pol.Max < pol.Base {
		pol.Max = pol.Base
	}
	if pol.Factor <= 1 {
		pol.Factor = 2
	}
	if pol.Jitter < 0 {
		pol.Jitter = 0
	}
	if pol.Jitter >= 1 {
		pol.Jitter = 0.999
	}
	return &Backoff{pol: pol, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Next returns the next delay in the schedule and advances it.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.pol.Base
	}
	d := b.cur
	// Advance the pre-jitter schedule, saturating at Max.
	next := time.Duration(float64(b.cur) * b.pol.Factor)
	if next > b.pol.Max || next < b.cur { // overflow guard
		next = b.pol.Max
	}
	b.cur = next
	if j := b.pol.Jitter; j > 0 {
		// Uniform in [d*(1-j), d*(1+j)].
		span := 2 * j * float64(d)
		d = time.Duration(float64(d)*(1-j) + b.rng.Float64()*span)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Reset rewinds the schedule to Base. The jitter stream is NOT rewound, so
// a Reset/Next cycle still decorrelates from other instances.
func (b *Backoff) Reset() { b.cur = 0 }
