package store

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"gpudpf/internal/strategy"
)

// Table file format (little-endian):
//
//	offset 0:  u32 magic "GPDF"
//	offset 4:  u32 format version (1)
//	offset 8:  u32 lanes
//	offset 12: u32 reserved (0)
//	offset 16: u64 rows
//	offset 24: rows × lanes × u32 row-major lane data
//
// The format is deliberately dumb: fixed-width little-endian words, no
// compression, no index. Pages are row-aligned windows computed from the
// shape, so the file needs no page table, and a table generator can write
// it with one streaming pass.
const (
	pagedMagic       = 0x47504446 // "GPDF"
	pagedVersion     = 1
	pagedHeaderBytes = 24
)

// DefaultPageBytes is the default page size: big enough to amortize a read
// syscall and give the SIMD kernel long contiguous runs, small enough that
// a skewed workload doesn't thrash whole-table-sized pages.
const DefaultPageBytes = 256 << 10

// DefaultPageCacheBytes is the default LRU budget for OpenPaged when the
// config leaves it zero.
const DefaultPageCacheBytes = 64 << 20

// PagedConfig sizes a PagedBacking's cache.
type PagedConfig struct {
	// PageBytes is the nominal page size in bytes; it is rounded down to a
	// whole number of rows (minimum one row). 0 means DefaultPageBytes.
	PageBytes int
	// CacheBytes is the LRU cache budget. The cache always retains at
	// least one page so iteration makes progress under any budget.
	// 0 means DefaultPageCacheBytes.
	CacheBytes int64
}

type pageEnt struct {
	idx  int
	data []uint32
}

// PagedBacking serves a table file through a page cache: fixed-size
// row-aligned pages, demand-loaded with plain ReadAt (no mmap — the purego
// and non-amd64 builds need no platform syscalls beyond os.File), evicted
// LRU under a byte budget. Evicted pages are dropped to the garbage
// collector, never reused, so row and chunk slices handed to readers stay
// valid for as long as the readers hold them — the same immutability
// contract in-RAM backings give for free.
//
// A PagedBacking outlives the epochs served over it: the Store layers
// delta-epoch overlays above it and never tries to reclaim it. Close when
// the serving process is done with the table.
type PagedBacking struct {
	f        *os.File
	rows     int
	lanes    int
	pageRows int
	nPages   int
	budget   int64

	mu     sync.Mutex
	pages  map[int]*list.Element // page idx → lru element holding *pageEnt
	lru    *list.List            // front = most recently used
	cached int64                 // bytes resident

	loads atomic.Int64 // pages read from the file (cache misses)
	hits  atomic.Int64
}

// WriteTableFile writes tab to path in the paged table format, atomically
// enough for our purposes (truncate + full write + close).
func WriteTableFile(path string, tab *strategy.Table) error {
	if tab == nil {
		return fmt.Errorf("store: cannot write a nil table")
	}
	if _, err := checkShape(tab.NumRows, tab.Lanes); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [pagedHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], pagedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], pagedVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(tab.Lanes))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(tab.NumRows))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [4]byte
	for _, v := range tab.Data {
		binary.LittleEndian.PutUint32(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenPaged opens a table file written by WriteTableFile, validating the
// header and size. The returned backing owns the file handle.
func OpenPaged(path string, cfg PagedConfig) (*PagedBacking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [pagedHeaderBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: short table file header: %w", path, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != pagedMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a table file (magic %#x)", path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != pagedVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s: unsupported table file version %d", path, v)
	}
	lanes := int(binary.LittleEndian.Uint32(hdr[8:]))
	rows64 := binary.LittleEndian.Uint64(hdr[16:])
	if rows64 > uint64(1)<<62 {
		f.Close()
		return nil, fmt.Errorf("store: %s: absurd row count %d", path, rows64)
	}
	rows := int(rows64)
	words, err := checkShape(rows, lanes)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(pagedHeaderBytes) + int64(words)*4; st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("store: %s: file is %d bytes, shape %d×%d needs %d", path, st.Size(), rows, lanes, want)
	}

	pageBytes := cfg.PageBytes
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	pageRows := pageBytes / (4 * lanes)
	if pageRows < 1 {
		pageRows = 1
	}
	if pageRows > rows {
		pageRows = rows
	}
	budget := cfg.CacheBytes
	if budget <= 0 {
		budget = DefaultPageCacheBytes
	}
	return &PagedBacking{
		f:        f,
		rows:     rows,
		lanes:    lanes,
		pageRows: pageRows,
		nPages:   (rows + pageRows - 1) / pageRows,
		budget:   budget,
		pages:    make(map[int]*list.Element),
		lru:      list.New(),
	}, nil
}

// Rows returns the table's row count.
func (p *PagedBacking) Rows() int { return p.rows }

// Lanes returns the table's lane count.
func (p *PagedBacking) Lanes() int { return p.lanes }

// Loads returns the number of pages read from the file so far (cache
// misses). Exposed for tests and cache-sizing diagnostics.
func (p *PagedBacking) Loads() int64 { return p.loads.Load() }

// Hits returns the number of page lookups served from the cache.
func (p *PagedBacking) Hits() int64 { return p.hits.Load() }

// Close releases the file handle. Callers must ensure no reads are in
// flight; already handed-out page slices remain valid (they are plain
// heap memory).
func (p *PagedBacking) Close() error { return p.f.Close() }

// pageSpan returns page idx's row range [lo, hi).
func (p *PagedBacking) pageSpan(idx int) (lo, hi int) {
	lo = idx * p.pageRows
	hi = lo + p.pageRows
	if hi > p.rows {
		hi = p.rows
	}
	return lo, hi
}

// page returns page idx's lane data, loading and caching it on a miss. The
// file read happens outside the cache lock, so concurrent misses on
// different pages overlap; a double load of the same page is benign (both
// copies are identical, the loser is garbage).
func (p *PagedBacking) page(idx int) ([]uint32, error) {
	p.mu.Lock()
	if el, ok := p.pages[idx]; ok {
		p.lru.MoveToFront(el)
		data := el.Value.(*pageEnt).data
		p.mu.Unlock()
		p.hits.Add(1)
		return data, nil
	}
	p.mu.Unlock()

	data, err := p.readPage(idx)
	if err != nil {
		return nil, err
	}
	p.loads.Add(1)

	p.mu.Lock()
	if el, ok := p.pages[idx]; ok {
		// Lost a race with a concurrent load of the same page; use the
		// cached copy so the cache accounting stays single-entry.
		p.lru.MoveToFront(el)
		data = el.Value.(*pageEnt).data
	} else {
		p.pages[idx] = p.lru.PushFront(&pageEnt{idx: idx, data: data})
		p.cached += int64(len(data)) * 4
		for p.cached > p.budget && p.lru.Len() > 1 {
			back := p.lru.Back()
			ent := back.Value.(*pageEnt)
			p.lru.Remove(back)
			delete(p.pages, ent.idx)
			p.cached -= int64(len(ent.data)) * 4
			// ent.data is NOT recycled: outstanding chunk slices may
			// still reference it. The GC reclaims it when they are gone.
		}
	}
	p.mu.Unlock()
	return data, nil
}

func (p *PagedBacking) readPage(idx int) ([]uint32, error) {
	lo, hi := p.pageSpan(idx)
	words := (hi - lo) * p.lanes
	raw := make([]byte, words*4)
	off := int64(pagedHeaderBytes) + int64(lo)*int64(p.lanes)*4
	if _, err := p.f.ReadAt(raw, off); err != nil {
		return nil, fmt.Errorf("store: page %d (rows [%d,%d)): %w", idx, lo, hi, err)
	}
	data := make([]uint32, words)
	for i := range data {
		data[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return data, nil
}

// pagedSource adapts a PagedBacking to the backing source interface.
type pagedSource struct {
	p *PagedBacking
}

func (ps *pagedSource) chunks(lo, hi int, fn func(strategy.Chunk) error) error {
	p := ps.p
	for cur := lo; cur < hi; {
		idx := cur / p.pageRows
		data, err := p.page(idx)
		if err != nil {
			return err
		}
		pLo, pHi := p.pageSpan(idx)
		end := hi
		if end > pHi {
			end = pHi
		}
		if err := fn(strategy.Chunk{Row: cur, Data: data[(cur-pLo)*p.lanes : (end-pLo)*p.lanes]}); err != nil {
			return err
		}
		cur = end
	}
	return nil
}

func (ps *pagedSource) row(i int) ([]uint32, error) {
	p := ps.p
	data, err := p.page(i / p.pageRows)
	if err != nil {
		return nil, err
	}
	lo, _ := p.pageSpan(i / p.pageRows)
	return data[(i-lo)*p.lanes : (i-lo+1)*p.lanes], nil
}

func (ps *pagedSource) flat() []uint32 { return nil }
