package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"gpudpf/internal/strategy"
)

// Table file format (little-endian):
//
//	offset 0:  u32 magic "GPDF"
//	offset 4:  u32 format version (1)
//	offset 8:  u32 lanes
//	offset 12: u32 reserved (0)
//	offset 16: u64 rows
//	offset 24: rows × lanes × u32 row-major lane data
//
// The format is deliberately dumb: fixed-width little-endian words, no
// compression, no index. Pages are row-aligned windows computed from the
// shape, so the file needs no page table, and a table generator can write
// it with one streaming pass.
const (
	pagedMagic       = 0x47504446 // "GPDF"
	pagedVersion     = 1
	pagedHeaderBytes = 24
)

// DefaultPageBytes is the default page size: big enough to amortize a read
// syscall and give the SIMD kernel long contiguous runs, small enough that
// a skewed workload doesn't thrash whole-table-sized pages.
const DefaultPageBytes = 256 << 10

// DefaultPageCacheBytes is the default LRU budget for OpenPaged when the
// config leaves it zero.
const DefaultPageCacheBytes = 64 << 20

// pagedFreeCap bounds the recycled-buffer free list: enough to keep a
// streaming pass's evict-reload churn allocation-free, small enough that
// an idle backing doesn't sit on a second cache's worth of dead pages.
const pagedFreeCap = 16

// pagedPrefetchDepth is the prefetch mailbox depth. One outstanding hint
// already overlaps the next page's read with the current page's
// accumulate; a little slack absorbs multiple concurrent streams.
const pagedPrefetchDepth = 4

// PagedConfig sizes a PagedBacking's cache.
type PagedConfig struct {
	// PageBytes is the nominal page size in bytes; it is rounded down to a
	// whole number of rows (minimum one row). 0 means DefaultPageBytes.
	PageBytes int
	// CacheBytes is the LRU cache budget. The cache always retains at
	// least one page so iteration makes progress under any budget.
	// 0 means DefaultPageCacheBytes.
	CacheBytes int64
}

// pageEnt is one resident (or recently evicted, still referenced) page.
// refs and retired are guarded by PagedBacking.mu: refs counts chunk
// iterations currently reading the page, retired marks it evicted from the
// cache. A retired page recycles — the whole entry, buffer included — into
// the free list when the last reference releases, never earlier, so chunk
// callbacks always see stable data. The LRU links are intrusive (rather
// than container/list) so a steady-state miss reuses a pooled entry
// outright instead of allocating an entry and a list element per load.
type pageEnt struct {
	idx     int
	data    []uint32
	refs    int
	retired bool
	prev    *pageEnt
	next    *pageEnt
}

// PagedBacking serves a table file through a page cache: fixed-size
// row-aligned pages, demand-loaded with plain ReadAt (no mmap — the purego
// and non-amd64 builds need no platform syscalls beyond os.File), evicted
// LRU under a byte budget.
//
// Two mechanisms keep the steady-state read path at a bounded, constant
// allocation count and ahead of the disk:
//
//   - a page pool: chunk iterations hold a reference on the page they are
//     reading, eviction only retires a page, and the buffer recycles into
//     a bounded free list once the last reference drops. (This is why
//     chunk data must not be retained past the callback — see
//     strategy.Chunk. Row reads return copies and stay valid forever.)
//   - async readahead: a prefetcher goroutine receives the chunk
//     iterator's next-page hints and issues the file read into the LRU
//     while the current page is still being accumulated, hiding the read
//     behind the table stream.
//
// A PagedBacking outlives the epochs served over it: the Store layers
// delta-epoch overlays above it and never tries to reclaim it. Close when
// the serving process is done with the table.
type PagedBacking struct {
	f        *os.File
	rows     int
	lanes    int
	pageRows int
	nPages   int
	budget   int64

	mu       sync.Mutex
	pages    map[int]*pageEnt // resident pages by index
	mru, lru *pageEnt         // intrusive recency list ends
	resident int              // len(pages), tracked for the keep-one floor
	cached   int64            // bytes resident
	free     []*pageEnt       // recycled entries, buffers at full-page cap

	prefCh   chan int      // next-page hints from chunk iterations
	prefStop chan struct{} // closed by Close
	prefDone chan struct{} // closed by the prefetcher on exit

	loads atomic.Int64 // pages read from the file (cache misses)
	hits  atomic.Int64
}

// WriteTableFile writes tab to path in the paged table format, atomically
// enough for our purposes (truncate + full write + close).
func WriteTableFile(path string, tab *strategy.Table) error {
	if tab == nil {
		return fmt.Errorf("store: cannot write a nil table")
	}
	return WriteTableFileRows(path, tab.NumRows, tab.Lanes, func(i int, dst []uint32) {
		copy(dst, tab.Row(i))
	})
}

// WriteTableFileRows streams a rows×lanes table to path in the paged table
// format, calling fill once per row (in order) to produce its lanes. It
// never materializes the table: a shard node can write a full-shape file
// holding only its row range without ever allocating rows×lanes words.
func WriteTableFileRows(path string, rows, lanes int, fill func(row int, dst []uint32)) error {
	if _, err := checkShape(rows, lanes); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [pagedHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], pagedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], pagedVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(lanes))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(rows))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	row := make([]uint32, lanes)
	enc := make([]byte, lanes*4)
	for i := 0; i < rows; i++ {
		fill(i, row)
		for l, v := range row {
			binary.LittleEndian.PutUint32(enc[l*4:], v)
		}
		if _, err := w.Write(enc); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenPaged opens a table file written by WriteTableFile, validating the
// header and size. The returned backing owns the file handle and runs a
// prefetcher goroutine until Close.
func OpenPaged(path string, cfg PagedConfig) (*PagedBacking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [pagedHeaderBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: short table file header: %w", path, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != pagedMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a table file (magic %#x)", path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != pagedVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s: unsupported table file version %d", path, v)
	}
	lanes := int(binary.LittleEndian.Uint32(hdr[8:]))
	rows64 := binary.LittleEndian.Uint64(hdr[16:])
	if rows64 > uint64(1)<<62 {
		f.Close()
		return nil, fmt.Errorf("store: %s: absurd row count %d", path, rows64)
	}
	rows := int(rows64)
	words, err := checkShape(rows, lanes)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(pagedHeaderBytes) + int64(words)*4; st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("store: %s: file is %d bytes, shape %d×%d needs %d", path, st.Size(), rows, lanes, want)
	}

	pageBytes := cfg.PageBytes
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	pageRows := pageBytes / (4 * lanes)
	if pageRows < 1 {
		pageRows = 1
	}
	if pageRows > rows {
		pageRows = rows
	}
	budget := cfg.CacheBytes
	if budget <= 0 {
		budget = DefaultPageCacheBytes
	}
	p := &PagedBacking{
		f:        f,
		rows:     rows,
		lanes:    lanes,
		pageRows: pageRows,
		nPages:   (rows + pageRows - 1) / pageRows,
		budget:   budget,
		pages:    make(map[int]*pageEnt),
		prefCh:   make(chan int, pagedPrefetchDepth),
		prefStop: make(chan struct{}),
		prefDone: make(chan struct{}),
	}
	go p.prefetcher()
	return p, nil
}

// Rows returns the table's row count.
func (p *PagedBacking) Rows() int { return p.rows }

// Lanes returns the table's lane count.
func (p *PagedBacking) Lanes() int { return p.lanes }

// Loads returns the number of pages read from the file so far (cache
// misses, prefetches included). Exposed for tests and cache-sizing
// diagnostics.
func (p *PagedBacking) Loads() int64 { return p.loads.Load() }

// Hits returns the number of page lookups served from the cache.
func (p *PagedBacking) Hits() int64 { return p.hits.Load() }

// Close stops the prefetcher and releases the file handle. Callers must
// ensure no reads are in flight; rows handed out by Row remain valid (they
// are copies).
func (p *PagedBacking) Close() error {
	close(p.prefStop)
	<-p.prefDone
	return p.f.Close()
}

// prefetcher drains next-page hints, loading each still-uncached page into
// the LRU so the chunk iteration that posted the hint finds it resident.
// It drops errors on the floor deliberately: a failed readahead just means
// the demand load repeats the read and reports it with context.
func (p *PagedBacking) prefetcher() {
	defer close(p.prefDone)
	for {
		select {
		case <-p.prefStop:
			return
		case idx := <-p.prefCh:
			ent, err := p.acquirePage(idx)
			if err == nil {
				p.releasePage(ent)
			}
		}
	}
}

// hintNext posts a non-blocking prefetch hint. A full mailbox drops the
// hint — the demand load path is always correct without it.
func (p *PagedBacking) hintNext(idx int) {
	select {
	case p.prefCh <- idx:
	default:
	}
}

// pageSpan returns page idx's row range [lo, hi).
func (p *PagedBacking) pageSpan(idx int) (lo, hi int) {
	lo = idx * p.pageRows
	hi = lo + p.pageRows
	if hi > p.rows {
		hi = p.rows
	}
	return lo, hi
}

// pushFrontLocked links ent at the MRU end (caller holds mu).
func (p *PagedBacking) pushFrontLocked(ent *pageEnt) {
	ent.prev = nil
	ent.next = p.mru
	if p.mru != nil {
		p.mru.prev = ent
	}
	p.mru = ent
	if p.lru == nil {
		p.lru = ent
	}
}

// unlinkLocked removes ent from the recency list (caller holds mu).
func (p *PagedBacking) unlinkLocked(ent *pageEnt) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		p.mru = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		p.lru = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

// touchLocked moves a resident ent to the MRU end (caller holds mu).
func (p *PagedBacking) touchLocked(ent *pageEnt) {
	if p.mru == ent {
		return
	}
	p.unlinkLocked(ent)
	p.pushFrontLocked(ent)
}

// acquirePage returns page idx with a reference held, loading and caching
// it on a miss. The file read happens outside the cache lock, so
// concurrent misses on different pages overlap; a double load of the same
// page is benign (both copies are identical, the loser recycles).
// Callers must pair with releasePage.
func (p *PagedBacking) acquirePage(idx int) (*pageEnt, error) {
	p.mu.Lock()
	if ent, ok := p.pages[idx]; ok {
		ent.refs++
		p.touchLocked(ent)
		p.mu.Unlock()
		p.hits.Add(1)
		return ent, nil
	}
	p.mu.Unlock()

	ent, err := p.loadPage(idx)
	if err != nil {
		return nil, err
	}
	p.loads.Add(1)

	p.mu.Lock()
	if won, ok := p.pages[idx]; ok {
		// Lost a race with a concurrent load of the same page; use the
		// cached copy so the cache accounting stays single-entry, and
		// recycle the loser.
		won.refs++
		p.touchLocked(won)
		p.recycleLocked(ent)
		p.mu.Unlock()
		return won, nil
	}
	ent.refs = 1
	p.pages[idx] = ent
	p.pushFrontLocked(ent)
	p.resident++
	p.cached += int64(len(ent.data)) * 4
	for p.cached > p.budget && p.resident > 1 {
		old := p.lru
		p.unlinkLocked(old)
		delete(p.pages, old.idx)
		p.resident--
		p.cached -= int64(len(old.data)) * 4
		// Retire, don't free: chunk iterations may still hold references.
		// The entry recycles when the last one releases.
		old.retired = true
		if old.refs == 0 {
			p.recycleLocked(old)
		}
	}
	p.mu.Unlock()
	return ent, nil
}

// releasePage drops one reference; the last release of a retired page
// recycles it into the free list.
func (p *PagedBacking) releasePage(ent *pageEnt) {
	p.mu.Lock()
	ent.refs--
	if ent.retired && ent.refs == 0 {
		p.recycleLocked(ent)
	}
	p.mu.Unlock()
}

// recycleLocked returns an entry to the free list (caller holds mu).
// Every buffer is allocated at full-page capacity, so any recycled entry
// can back any page. Beyond the cap the entry drops to the GC.
func (p *PagedBacking) recycleLocked(ent *pageEnt) {
	if len(p.free) < pagedFreeCap {
		ent.refs, ent.retired = 0, false
		p.free = append(p.free, ent)
	}
}

// loadPage reads page idx from the file into a pooled (or fresh) entry.
// On little-endian hosts the file bytes land directly in the word buffer's
// memory — no staging copy, no per-word decode; other hosts stage through
// a byte buffer and decode. In steady state this path allocates nothing:
// the free list supplies the entry, and ReadAt fills it in place.
func (p *PagedBacking) loadPage(idx int) (*pageEnt, error) {
	lo, hi := p.pageSpan(idx)
	words := (hi - lo) * p.lanes

	p.mu.Lock()
	var ent *pageEnt
	if n := len(p.free); n > 0 {
		ent = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if ent == nil {
		ent = &pageEnt{data: make([]uint32, words, p.pageRows*p.lanes)}
	}
	ent.idx = idx
	ent.data = ent.data[:words]

	off := int64(pagedHeaderBytes) + int64(lo)*int64(p.lanes)*4
	if hostLittleEndian {
		if _, err := p.f.ReadAt(wordsAsBytes(ent.data), off); err != nil {
			return nil, fmt.Errorf("store: page %d (rows [%d,%d)): %w", idx, lo, hi, err)
		}
		return ent, nil
	}
	raw := make([]byte, words*4)
	if _, err := p.f.ReadAt(raw, off); err != nil {
		return nil, fmt.Errorf("store: page %d (rows [%d,%d)): %w", idx, lo, hi, err)
	}
	for i := range ent.data {
		ent.data[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return ent, nil
}

// pagedSource adapts a PagedBacking to the backing source interface.
type pagedSource struct {
	p *PagedBacking
}

// chunks streams [lo, hi) page by page. Each page is referenced for
// exactly the duration of its callback (the strategy.Chunk retention
// contract), and before the callback runs, the NEXT page the iteration
// will need is hinted to the prefetcher — its file read overlaps this
// chunk's accumulate.
func (ps *pagedSource) chunks(lo, hi int, fn func(strategy.Chunk) error) error {
	p := ps.p
	for cur := lo; cur < hi; {
		idx := cur / p.pageRows
		pLo, pHi := p.pageSpan(idx)
		if pHi < hi {
			p.hintNext(idx + 1)
		}
		ent, err := p.acquirePage(idx)
		if err != nil {
			return err
		}
		end := hi
		if end > pHi {
			end = pHi
		}
		err = fn(strategy.Chunk{Row: cur, Data: ent.data[(cur-pLo)*p.lanes : (end-pLo)*p.lanes]})
		p.releasePage(ent)
		if err != nil {
			return err
		}
		cur = end
	}
	return nil
}

// row returns a copy of row i (copies stay valid forever, so Snapshot.Row's
// release-independent lifetime holds even though page buffers recycle).
func (ps *pagedSource) row(i int) ([]uint32, error) {
	p := ps.p
	ent, err := p.acquirePage(i / p.pageRows)
	if err != nil {
		return nil, err
	}
	lo, _ := p.pageSpan(i / p.pageRows)
	out := make([]uint32, p.lanes)
	copy(out, ent.data[(i-lo)*p.lanes:(i-lo+1)*p.lanes])
	p.releasePage(ent)
	return out, nil
}

func (ps *pagedSource) flat() []uint32 { return nil }
