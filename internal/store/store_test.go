package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gpudpf/internal/strategy"
)

func testStore(t testing.TB, rows, lanes int) *Store {
	t.Helper()
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Data {
		tab.Data[i] = uint32(i)
	}
	s, err := New(tab)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func row(vals ...uint32) []uint32 { return vals }

// rowOf reads one snapshot row, panicking on error (in-RAM and overlay
// backings never fail; a panic fails the test from any goroutine).
func rowOf(sn *Snapshot, i int) []uint32 {
	r, err := sn.Row(i)
	if err != nil {
		panic(err)
	}
	return r
}

// uniformWrites builds a batch setting every listed row to a constant.
func uniformWrites(lanes int, v uint32, rows ...uint64) []RowWrite {
	writes := make([]RowWrite, len(rows))
	for i, r := range rows {
		vals := make([]uint32, lanes)
		for l := range vals {
			vals[l] = v
		}
		writes[i] = RowWrite{Row: r, Vals: vals}
	}
	return writes
}

// TestSnapshotPinning is the core copy-on-write contract: a reader pinned
// to epoch N keeps reading N's exact bytes while Apply installs N+1, and a
// fresh Acquire sees N+1.
func TestSnapshotPinning(t *testing.T) {
	s := testStore(t, 8, 2)
	old := s.Acquire()
	defer old.Release()
	if old.Epoch() != 0 {
		t.Fatalf("fresh store at epoch %d", old.Epoch())
	}
	oldRow := append([]uint32(nil), rowOf(old, 3)...)

	epoch, err := s.Apply([]RowWrite{{Row: 3, Vals: row(100, 200)}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("Apply returned epoch %d, want 1", epoch)
	}
	for l, v := range rowOf(old, 3) {
		if v != oldRow[l] {
			t.Fatalf("pinned snapshot changed under the reader: row 3 lane %d now %d", l, v)
		}
	}
	fresh := s.Acquire()
	defer fresh.Release()
	if fresh.Epoch() != 1 {
		t.Fatalf("fresh snapshot at epoch %d, want 1", fresh.Epoch())
	}
	if got := rowOf(fresh, 3); got[0] != 100 || got[1] != 200 {
		t.Fatalf("row 3 after apply: %v", got)
	}
	// Untouched rows carried over.
	if got, want := rowOf(fresh, 5), rowOf(old, 5); got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("row 5 not carried into the new epoch: %v vs %v", got, want)
	}
}

// TestApplyValidation: out-of-range rows and wrong-width values are
// refused without installing anything.
func TestApplyValidation(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Apply([]RowWrite{{Row: 4, Vals: row(1, 2)}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := s.Apply([]RowWrite{{Row: 0, Vals: row(1)}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if s.Epoch() != 0 {
		t.Fatalf("failed applies advanced the epoch to %d", s.Epoch())
	}
}

// TestLastWriteWins: duplicate rows in one batch apply in order.
func TestLastWriteWins(t *testing.T) {
	s := testStore(t, 4, 1)
	if _, err := s.Apply([]RowWrite{{Row: 2, Vals: row(7)}, {Row: 2, Vals: row(9)}}); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if rowOf(sn, 2)[0] != 9 {
		t.Fatalf("row 2 = %d, want the later write (9)", rowOf(sn, 2)[0])
	}
}

// TestPrepareCommit: a staged epoch is invisible until commit, then
// becomes the current view; stale and double prepares are refused.
func TestPrepareCommit(t *testing.T) {
	s := testStore(t, 8, 2)
	if err := s.Prepare(1, []RowWrite{{Row: 0, Vals: row(5, 6)}}); err != nil {
		t.Fatal(err)
	}
	mid := s.Acquire()
	if mid.Epoch() != 0 || rowOf(mid, 0)[0] == 5 {
		t.Fatalf("staged epoch visible before commit: epoch %d row0 %v", mid.Epoch(), rowOf(mid, 0))
	}
	mid.Release()
	if err := s.Prepare(2, nil); err == nil {
		t.Fatal("second prepare accepted while one is staged")
	}
	if _, err := s.Apply(nil); err == nil {
		t.Fatal("Apply accepted while an epoch is staged")
	}
	if err := s.Commit(9); err == nil {
		t.Fatal("commit of a different epoch accepted")
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 1 || rowOf(sn, 0)[0] != 5 {
		t.Fatalf("committed epoch not current: epoch %d row0 %v", sn.Epoch(), rowOf(sn, 0))
	}
	// A prepare at or below the effective epoch is a stale coordinator.
	if err := s.Prepare(1, nil); err == nil {
		t.Fatal("replayed epoch accepted")
	}
	// Gaps above are fine (a coordinator may have burned epochs).
	if err := s.Prepare(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(5); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 5 {
		t.Fatalf("epoch %d after committing 5", got)
	}
}

// TestAbortStaged: aborting a staged epoch leaves the current view
// untouched and burns the number.
func TestAbortStaged(t *testing.T) {
	s := testStore(t, 4, 1)
	if err := s.Prepare(1, []RowWrite{{Row: 1, Vals: row(42)}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	if sn.Epoch() != 0 || rowOf(sn, 1)[0] == 42 {
		t.Fatalf("aborted stage leaked: epoch %d row1 %v", sn.Epoch(), rowOf(sn, 1))
	}
	sn.Release()
	if s.Epoch() != 1 {
		t.Fatalf("aborted epoch not burned: effective epoch %d, want 1", s.Epoch())
	}
	if err := s.Prepare(1, nil); err == nil {
		t.Fatal("burned epoch reissued")
	}
	if err := s.Prepare(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
}

// TestAbortRollsBackCommit: Abort of the CURRENT epoch reinstates the
// predecessor — the straggler-rolls-back path of the cluster handshake —
// and pinned readers of the rolled-back epoch keep a stable (if orphaned)
// view.
func TestAbortRollsBackCommit(t *testing.T) {
	s := testStore(t, 4, 1)
	if err := s.Prepare(1, []RowWrite{{Row: 2, Vals: row(77)}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	orphan := s.Acquire() // a reader lands on the committed epoch
	if orphan.Epoch() != 1 || rowOf(orphan, 2)[0] != 77 {
		t.Fatalf("committed epoch wrong: %d %v", orphan.Epoch(), rowOf(orphan, 2))
	}
	if !s.Rollbackable() {
		t.Fatal("no rollback window after commit")
	}
	if err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 0 || rowOf(sn, 2)[0] == 77 {
		t.Fatalf("rollback did not reinstate epoch 0: epoch %d row2 %v", sn.Epoch(), rowOf(sn, 2))
	}
	// The orphaned reader's view is intact until released.
	if rowOf(orphan, 2)[0] != 77 {
		t.Fatal("orphaned snapshot mutated by rollback")
	}
	orphan.Release()
	// Epoch 1 is burned: the next update lands at 2.
	epoch, err := s.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("post-rollback apply landed at %d, want 2 (1 is burned)", epoch)
	}
	// Abort of an epoch the store never saw is an idempotent no-op.
	if err := s.Abort(9); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyPrepareSharesBacking: an epoch tick with no writes must not
// copy the table.
func TestEmptyPrepareSharesBacking(t *testing.T) {
	s := testStore(t, 1024, 64)
	before := s.Acquire()
	if err := s.Prepare(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	after := s.Acquire()
	bd, err := before.Data()
	if err != nil {
		t.Fatal(err)
	}
	ad, err := after.Data()
	if err != nil {
		t.Fatal(err)
	}
	if &bd[0] != &ad[0] {
		t.Fatal("empty epoch tick copied the table")
	}
	before.Release()
	after.Release()
}

// TestBackingRecycled: a write batch lands as an O(writes) overlay (the
// chain depth grows, no table copy), compaction folds the chain at the
// depth bound, and a retired chain's root array is recycled into the
// spare pool instead of reallocating per compaction.
func TestBackingRecycled(t *testing.T) {
	s := testStore(t, 64, 4)
	writes := uniformWrites(4, 1, 0)
	// Applies up to the depth bound stack overlays — depth grows, no copy.
	for i := 1; i <= DefaultMaxChainDepth; i++ {
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
		if d := s.ChainDepth(); d != i {
			t.Fatalf("after apply %d chain depth is %d", i, d)
		}
	}
	// The next apply exceeds the bound and folds the chain flat.
	if _, err := s.Apply(writes); err != nil {
		t.Fatal(err)
	}
	if d := s.ChainDepth(); d != 0 {
		t.Fatalf("chain depth %d after compaction, want 0", d)
	}
	// One more apply retires the old chain (the rollback window moves),
	// unwinding it down to the original epoch-0 array, which must land in
	// the spare pool.
	if _, err := s.Apply(writes); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	spares := len(s.spares)
	s.mu.Unlock()
	if spares == 0 {
		t.Fatal("no spare backing after the pre-compaction chain was fully released")
	}
	allocs := testing.AllocsPerRun(3*DefaultMaxChainDepth, func() {
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state alternates overlay pushes with an occasional fold; the
	// folds must reuse the spare arrays, so per-apply allocations stay at
	// the patch + book-keeping level (a fresh 1 KiB table copy per apply
	// would blow well past this).
	if allocs > 12 {
		t.Fatalf("steady-state Apply allocates %.1f objects/op; backing not recycled", allocs)
	}
}

// TestConcurrentReadersWriters hammers Acquire/Release against Apply and
// the two-phase path under -race: every snapshot a reader holds must be
// internally consistent (the writer always writes a whole epoch with one
// uniform value, so any mixed row values prove a torn view).
func TestConcurrentReadersWriters(t *testing.T) {
	const rows, lanes = 128, 4
	s := testStore(t, rows, lanes)
	// Epoch 0 content is non-uniform; normalize first.
	all := make([]uint64, rows)
	for i := range all {
		all[i] = uint64(i)
	}
	if _, err := s.Apply(uniformWrites(lanes, 1, all...)); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				sn := s.Acquire()
				want := rowOf(sn, 0)[0]
				for i := 0; i < rows; i++ {
					for _, v := range rowOf(sn, i) {
						if v != want {
							select {
							case errs <- fmt.Errorf("torn snapshot at epoch %d: row %d has %d, row 0 has %d", sn.Epoch(), i, v, want):
							default:
							}
							sn.Release()
							return
						}
					}
				}
				sn.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := uint32(2)
		for i := 0; i < 200; i++ {
			if i%3 == 0 {
				// Two-phase with an occasional abort.
				epoch := s.Epoch() + 1
				if err := s.Prepare(epoch, uniformWrites(lanes, v, all...)); err != nil {
					errs <- err
					return
				}
				if i%6 == 0 {
					if err := s.Abort(epoch); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := s.Commit(epoch); err != nil {
					errs <- err
					return
				}
			} else if _, err := s.Apply(uniformWrites(lanes, v, all...)); err != nil {
				errs <- err
				return
			}
			v++
		}
		stop.Store(true)
	}()
	wg.Wait()
	stop.Store(true)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEpochsNeverRecur: interleaved aborts and applies never reissue an
// epoch number.
func TestEpochsNeverRecur(t *testing.T) {
	s := testStore(t, 4, 1)
	seen := map[uint64]bool{0: true}
	for i := 0; i < 20; i++ {
		if i%4 == 2 {
			target := s.Epoch() + 1
			if err := s.Prepare(target, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.Abort(target); err != nil {
				t.Fatal(err)
			}
			continue
		}
		epoch, err := s.Apply(uniformWrites(1, uint32(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if seen[epoch] {
			t.Fatalf("epoch %d reissued", epoch)
		}
		seen[epoch] = true
	}
}
