//go:build race

package store

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation allocates per synchronization event — the
// allocation-count tests are skipped there (the uninstrumented build
// enforces them).
const raceEnabled = true
