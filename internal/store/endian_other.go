//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package store

// hostLittleEndian is false here: big-endian (and unknown-endian) hosts
// stage page reads through a byte buffer and decode each word with
// binary.LittleEndian, matching the table file format portably.
const hostLittleEndian = false

// wordsAsBytes is never called when hostLittleEndian is false; this stub
// keeps the paged read path compiling without build-tagging the caller.
func wordsAsBytes(w []uint32) []byte { panic("store: wordsAsBytes on big-endian host") }
