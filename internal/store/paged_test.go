package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// pagedFixture writes a deterministic table to disk and opens it with the
// cache budget set to 1/4 of the table's bytes — the out-of-core shape the
// acceptance check requires (the table is 4× larger than the cache).
func pagedFixture(t testing.TB, rows, lanes, pageBytes int) (*strategy.Table, *PagedBacking) {
	t.Helper()
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rows*31 + lanes)))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	path := filepath.Join(t.TempDir(), "table.gpdf")
	if err := WriteTableFile(path, tab); err != nil {
		t.Fatal(err)
	}
	pb, err := OpenPaged(path, PagedConfig{PageBytes: pageBytes, CacheBytes: int64(rows*lanes) * 4 / 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pb.Close() })
	return tab, pb
}

// TestPagedEquivalenceAcrossStrategies is the out-of-core acceptance
// check: a paged store whose cache budget is a quarter of the table must
// serve answers bit-identical to the in-RAM path, for every strategy and
// across PRFs, while actually evicting (the sweep touches every page with
// a cache that cannot hold them).
func TestPagedEquivalenceAcrossStrategies(t *testing.T) {
	const rows, lanes = 4096, 16 // 256 KiB table, 64 KiB cache
	tab, pb := pagedFixture(t, rows, lanes, 8<<10)
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()

	strategies := []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 8, Fused: true},
		strategy.MemBoundTree{K: 128, Fused: false},
		strategy.CoopGroups{},
		strategy.MultiGPU{Devices: 2},
		strategy.CPUBaseline{Threads: 2},
	}
	prgs := []dpf.PRG{dpf.NewAESPRG(), dpf.NewChaChaPRG()}
	rng := rand.New(rand.NewSource(4242))
	for _, prg := range prgs {
		var keys []*dpf.Key
		for _, idx := range []uint64{1, 512, 4095} {
			k0, _, err := dpf.Gen(prg, idx, tab.Bits(), []uint32{1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, &k0)
		}
		for _, st := range strategies {
			var ctr gpu.Counters
			want := strategy.NewAnswers(len(keys), lanes)
			if err := st.RunRangeInto(prg, keys, tab.View(), 0, rows, &ctr, want); err != nil {
				t.Fatalf("%s/%s in-RAM: %v", st.Name(), prg.Name(), err)
			}
			got := strategy.NewAnswers(len(keys), lanes)
			if err := st.RunRangeInto(prg, keys, sn, 0, rows, &ctr, got); err != nil {
				t.Fatalf("%s/%s paged: %v", st.Name(), prg.Name(), err)
			}
			for q := range want {
				for l := range want[q] {
					if got[q][l] != want[q][l] {
						t.Fatalf("%s/%s q=%d lane=%d: paged %d != in-RAM %d",
							st.Name(), prg.Name(), q, l, got[q][l], want[q][l])
					}
				}
			}
		}
	}
	// The budget is a quarter of the table: the sweeps above must have
	// loaded far more pages than fit, proving eviction + reload really ran.
	if loads, pages := pb.Loads(), (rows*lanes*4)/(8<<10); loads <= int64(pages) {
		t.Fatalf("only %d page loads over repeated full sweeps of %d pages; cache never evicted", loads, pages)
	}
}

// TestPagedDeltaEpochs: updates over a paged root land as overlays, reads
// merge them with file pages, and compaction folds the chain into ONE
// overlay over the paged root — the table is never materialized in RAM.
func TestPagedDeltaEpochs(t *testing.T) {
	const rows, lanes = 1024, 4
	tab, pb := pagedFixture(t, rows, lanes, 4<<10)
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMaxChainDepth(2)
	expect := append([]uint32(nil), tab.Data...)
	for i := 0; i < 7; i++ {
		writes := []RowWrite{
			{Row: uint64(i * 100), Vals: row(uint32(i), uint32(i), uint32(i), uint32(i))},
			{Row: uint64(i*100 + 1), Vals: row(9, 9, 9, 9)},
		}
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
		expect = applyWords(expect, lanes, writes)
		// Over a paged root the fold merges to depth 1, never to flat.
		if d := s.ChainDepth(); d < 1 || d > 2 {
			t.Fatalf("apply %d: chain depth %d, want 1..2 over a paged root", i, d)
		}
		sn := s.Acquire()
		got := viewWords(t, sn)
		for w := range expect {
			if got[w] != expect[w] {
				t.Fatalf("apply %d word %d: %d, want %d", i, w, got[w], expect[w])
			}
		}
		// The contiguous accessors must keep refusing: nothing materialized.
		if _, derr := sn.Data(); !errors.Is(derr, ErrNotContiguous) {
			t.Fatalf("paged epoch became contiguous: %v", derr)
		}
		sn.Release()
	}
	// Row reads work across patch and file pages.
	sn := s.Acquire()
	defer sn.Release()
	got, err := sn.Row(601)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("patched row 601 = %v", got)
	}
}

// TestPagedSnapshotAccessors: the deprecated raw accessors fail with the
// named error on a paged epoch-0 snapshot, while CopyWords and Row serve
// the same bytes the file holds.
func TestPagedSnapshotAccessors(t *testing.T) {
	const rows, lanes = 256, 4
	tab, pb := pagedFixture(t, rows, lanes, 1<<10)
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if _, err := sn.Data(); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("Data: %v, want ErrNotContiguous", err)
	}
	if _, err := sn.Table(); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("Table: %v, want ErrNotContiguous", err)
	}
	if _, err := sn.RowRange(10, 20); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("RowRange: %v, want ErrNotContiguous", err)
	}
	win := make([]uint32, 3*lanes)
	if err := sn.CopyWords(37*lanes, win); err != nil {
		t.Fatal(err)
	}
	for i := range win {
		if win[i] != tab.Data[37*lanes+i] {
			t.Fatalf("CopyWords word %d: %d, want %d", i, win[i], tab.Data[37*lanes+i])
		}
	}
	r, err := sn.Row(199)
	if err != nil {
		t.Fatal(err)
	}
	for l := range r {
		if r[l] != tab.Data[199*lanes+l] {
			t.Fatalf("row 199 lane %d: %d, want %d", l, r[l], tab.Data[199*lanes+l])
		}
	}
}

// TestPagedFileValidation: the loader refuses wrong magic, truncation, and
// shape/size mismatches by name instead of serving garbage.
func TestPagedFileValidation(t *testing.T) {
	dir := t.TempDir()
	tab, err := strategy.NewTable(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.gpdf")
	if err := WriteTableFile(good, tab); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "magic.gpdf")
	mut := append([]byte(nil), raw...)
	mut[0] ^= 0xff
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPaged(bad, PagedConfig{}); err == nil {
		t.Fatal("wrong magic accepted")
	}

	short := filepath.Join(dir, "short.gpdf")
	if err := os.WriteFile(short, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPaged(short, PagedConfig{}); err == nil {
		t.Fatal("truncated file accepted")
	}

	pb, err := OpenPaged(good, PagedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	if pb.Rows() != 16 || pb.Lanes() != 2 {
		t.Fatalf("shape %d×%d from file", pb.Rows(), pb.Lanes())
	}
}

// TestPagedTinyCache: a budget far below one sweep still serves correct
// bytes (the cache floor keeps one page resident so iteration progresses).
func TestPagedTinyCache(t *testing.T) {
	const rows, lanes = 512, 4
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Data {
		tab.Data[i] = uint32(i * 3)
	}
	path := filepath.Join(t.TempDir(), "t.gpdf")
	if err := WriteTableFile(path, tab); err != nil {
		t.Fatal(err)
	}
	pb, err := OpenPaged(path, PagedConfig{PageBytes: 1 << 10, CacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	got := viewWords(t, sn)
	for i := range got {
		if got[i] != tab.Data[i] {
			t.Fatalf("word %d: %d, want %d", i, got[i], tab.Data[i])
		}
	}
}
