//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package store

import "unsafe"

// hostLittleEndian gates the zero-copy paged read path: the table file
// format is little-endian, so on little-endian hosts the file bytes ARE
// the in-memory word representation and a page read can land directly in
// the word buffer — no staging copy, no per-word decode.
const hostLittleEndian = true

// wordsAsBytes views a word buffer as its underlying bytes so ReadAt can
// fill it in place. Only compiled on little-endian targets, where the
// aliasing is exactly the file format.
func wordsAsBytes(w []uint32) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*4)
}
