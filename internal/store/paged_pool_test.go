package store

import (
	"path/filepath"
	"testing"

	"gpudpf/internal/strategy"
)

// TestPagedSteadyStateAllocs pins the page pool: a full chunk sweep of a
// table 4× the cache budget — every page missing, evicting, and reloading
// — must allocate only a small constant once the pool is warm. Entries and
// buffers recycle through the free list and, on little-endian hosts, pages
// read straight into pooled word buffers, so the steady state allocates
// nothing per page (the seed path allocated a raw buffer, a decoded
// buffer, an entry, and a list element per miss — ~80/op on the hot-path
// bench).
func TestPagedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates and defeats pool reuse")
	}
	const rows, lanes = 4096, 16 // 256 KiB table, 64 KiB cache (16 pages of 4 KiB)
	_, pb := pagedFixture(t, rows, lanes, 4<<10)
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()

	sink := uint32(0)
	sweep := func(c strategy.Chunk) error {
		sink += c.Data[0]
		return nil
	}
	for i := 0; i < 3; i++ {
		if err := sn.Chunks(0, rows, sweep); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := sn.Chunks(0, rows, sweep); err != nil {
			t.Fatal(err)
		}
	})
	// Budget 3: stray transients when a prefetch race momentarily drains
	// the free list. Nothing may scale with the page count of the sweep.
	if allocs > 3 {
		t.Errorf("paged full sweep allocates %.1f/op at steady state, want ≤ 3 (pooled pages)", allocs)
	}
	_ = sink
}

// TestPagedRowCopiesSurviveRecycling: Row hands out copies, so a slice
// stays valid even after the page it came from has been evicted, its
// buffer recycled, and the buffer reloaded with different rows.
func TestPagedRowCopiesSurviveRecycling(t *testing.T) {
	const rows, lanes = 1024, 4
	tab, pb := pagedFixture(t, rows, lanes, 1<<10)
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()

	r7, err := sn.Row(7)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint32(nil), r7...)
	// Churn the whole cache several times over.
	for i := 0; i < 3; i++ {
		if err := sn.Chunks(0, rows, func(strategy.Chunk) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	for l := range want {
		if r7[l] != want[l] || r7[l] != tab.Data[7*lanes+l] {
			t.Fatalf("row 7 lane %d changed under churn: %d, want %d", l, r7[l], tab.Data[7*lanes+l])
		}
	}
}

// TestWriteTableFileRows: the streaming row-wise writer produces a file
// the paged loader serves bit-identically to one written from a
// materialized table — a shard node can generate its slice of a huge table
// without ever holding rows×lanes words.
func TestWriteTableFileRows(t *testing.T) {
	const rows, lanes = 300, 6
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Data {
		tab.Data[i] = uint32(i*2654435761 + 17)
	}
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.gpdf")
	if err := WriteTableFile(whole, tab); err != nil {
		t.Fatal(err)
	}
	streamed := filepath.Join(dir, "streamed.gpdf")
	err = WriteTableFileRows(streamed, rows, lanes, func(i int, dst []uint32) {
		copy(dst, tab.Row(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := OpenPaged(streamed, PagedConfig{PageBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	s, err := NewPaged(pb)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	got := viewWords(t, sn)
	for i := range got {
		if got[i] != tab.Data[i] {
			t.Fatalf("streamed file word %d: %d, want %d", i, got[i], tab.Data[i])
		}
	}
	if _, err := OpenPaged(whole, PagedConfig{}); err != nil {
		t.Fatal(err)
	}
}
