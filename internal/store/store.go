// Package store owns the serving table: an epoch-versioned, copy-on-write
// Store whose readers pin immutable snapshots while writers install whole
// new epochs. The paper's serving story assumes a stable table per query
// epoch; this package is where that assumption becomes a mechanism instead
// of a convention.
//
// A Snapshot is one epoch's table view — the contiguous lane buffer the
// strategies' accumulateTile streams, behind row accessors and an Epoch().
// Acquire pins the current snapshot (an atomic refcount, no lock on the
// read path) and Release unpins it; the backing array of a fully released,
// superseded snapshot is recycled into the next epoch's copy, so a
// steady-state update churn alternates between two buffers instead of
// growing the heap.
//
// Writers never mutate in place. Apply copies the current epoch's data,
// applies a batch of row writes, and atomically installs the result as
// epoch N+1 — readers pinned to N keep reading N, unblocked and unbothered
// (the -race-provable fix for the historical Update/Answer race). The
// two-phase form (Prepare / Commit / Abort) is the same installation split
// across a cluster handshake: every shard stages the target epoch, the
// coordinator commits only when all acked, and a straggler's Abort both
// drops a staged epoch and rolls back a committed-but-orphaned one, so a
// partial cluster failure leaves every shard readable at the old epoch.
//
// Epoch numbers never recur. An aborted epoch is burned: Epoch() and the
// next prepare/apply target skip past it, so a partial share pinned to a
// rolled-back epoch can never silently epoch-match a later, different
// table (the merge-consistency check a cluster runs would otherwise be
// blind to exactly the failure it exists to catch).
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpudpf/internal/strategy"
)

// RowWrite is one row overwrite in an update batch. Vals must be exactly
// the table's lane count wide. When a batch writes the same row twice, the
// later write wins (batches apply in order).
type RowWrite struct {
	Row  uint64
	Vals []uint32
}

// backing is one epoch's data array plus the count of snapshots that still
// reference it. An empty Prepare (an epoch tick with no row writes) shares
// its predecessor's backing instead of copying the table, so the refcount
// is per-backing, not per-snapshot.
type backing struct {
	data []uint32
	refs atomic.Int64
}

// Snapshot is one epoch's immutable table view. It is safe for concurrent
// readers; nothing ever mutates its data. Callers that obtained it from
// Acquire must Release it exactly once — the backing array is recycled
// when the last reference of a superseded epoch drops.
type Snapshot struct {
	epoch uint64
	tab   strategy.Table
	b     *backing
	s     *Store
	// refs counts pins on this snapshot: the store's own reference while
	// current (or retained for rollback), plus one per outstanding
	// Acquire. At zero the snapshot is dead and its backing reference is
	// returned.
	refs atomic.Int64
}

// Epoch returns the snapshot's epoch (0 for a freshly adopted table).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Table returns the snapshot's table view. The returned table is immutable
// — it is the snapshot's own view, shared with every other holder of this
// epoch — and remains valid until Release.
func (sn *Snapshot) Table() *strategy.Table { return &sn.tab }

// Rows returns the table's row count (immutable across epochs).
func (sn *Snapshot) Rows() int { return sn.tab.NumRows }

// Lanes returns the table's lane count (immutable across epochs).
func (sn *Snapshot) Lanes() int { return sn.tab.Lanes }

// Row returns row i of this epoch, valid until Release.
func (sn *Snapshot) Row(i int) []uint32 { return sn.tab.Row(i) }

// Data returns this epoch's contiguous row-major lane buffer — what
// strategy.accumulateTile streams — valid until Release.
func (sn *Snapshot) Data() []uint32 { return sn.tab.Data }

// RowRange returns the contiguous lane buffer for rows [lo,hi) of this
// epoch, valid until Release. It is the export side of snapshot transfer:
// a healer streams this buffer (chunked by the wire layer) to a stale
// peer's Adopt.
func (sn *Snapshot) RowRange(lo, hi int) ([]uint32, error) {
	if lo < 0 || hi > sn.tab.NumRows || lo >= hi {
		return nil, fmt.Errorf("store: row range [%d,%d) outside table of %d rows", lo, hi, sn.tab.NumRows)
	}
	return sn.tab.Data[lo*sn.tab.Lanes : hi*sn.tab.Lanes], nil
}

// tryAcquire pins the snapshot unless it is already dead (refs hit zero
// between the caller loading the pointer and pinning it).
func (sn *Snapshot) tryAcquire() bool {
	for {
		n := sn.refs.Load()
		if n <= 0 {
			return false
		}
		if sn.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release unpins the snapshot. The last release of a superseded epoch
// recycles its backing into the store's spare pool.
func (sn *Snapshot) Release() { sn.release(false) }

// release is Release with the store's writer lock state made explicit:
// writer-side code that drops references while holding s.mu must not
// re-enter it through the recycling path.
func (sn *Snapshot) release(locked bool) {
	if sn.refs.Add(-1) > 0 {
		return
	}
	if sn.b.refs.Add(-1) > 0 {
		return
	}
	if locked {
		sn.s.recycleLocked(sn.b.data)
	} else {
		sn.s.recycle(sn.b.data)
	}
}

// staged is a prepared-but-uncommitted epoch.
type staged struct {
	epoch uint64
	b     *backing
}

// Store is the epoch-versioned owner of one replica's table.
type Store struct {
	rows, lanes int

	// cur is the current epoch's snapshot; the store holds one reference
	// on it (dropped when a commit supersedes it).
	cur atomic.Pointer[Snapshot]

	// mu serializes writers: Apply, Prepare, Commit, Abort, and backing
	// recycling. The read path (Acquire/Release) never takes it.
	mu     sync.Mutex
	stage  *staged
	prev   *Snapshot // last superseded epoch, retained (with a ref) so Abort can roll back
	burned uint64    // highest aborted epoch; never reissued
	spares [][]uint32
}

// maxSpares bounds the recycled-backing pool: current + previous + one
// in-flight copy is the steady-state working set; anything beyond is heap
// the store should give back.
const maxSpares = 2

// New builds a Store over tab, adopted as epoch 0. The store takes
// ownership of tab's backing array: the caller must not mutate it after
// New (all writes go through Apply or Prepare/Commit).
func New(tab *strategy.Table) (*Store, error) {
	if tab == nil || tab.NumRows <= 0 || tab.Lanes <= 0 {
		return nil, fmt.Errorf("store: needs a non-empty table")
	}
	if len(tab.Data) != tab.NumRows*tab.Lanes {
		return nil, fmt.Errorf("store: table data is %d words, shape %d×%d needs %d",
			len(tab.Data), tab.NumRows, tab.Lanes, tab.NumRows*tab.Lanes)
	}
	s := &Store{rows: tab.NumRows, lanes: tab.Lanes}
	b := &backing{data: tab.Data}
	b.refs.Store(1)
	sn := &Snapshot{tab: strategy.Table{NumRows: tab.NumRows, Lanes: tab.Lanes, Data: tab.Data}, b: b, s: s}
	sn.refs.Store(1) // the store's own reference
	s.cur.Store(sn)
	return s, nil
}

// Shape returns the table's row and lane counts (immutable across epochs).
func (s *Store) Shape() (rows, lanes int) { return s.rows, s.lanes }

// Epoch returns the store's effective epoch: the current snapshot's, or
// the highest aborted epoch if that is newer (aborted epochs are burned,
// not reissued). The next successful update lands strictly above it.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.effectiveLocked()
}

func (s *Store) effectiveLocked() uint64 {
	e := s.cur.Load().epoch
	if s.burned > e {
		e = s.burned
	}
	return e
}

// Acquire pins and returns the current snapshot. The caller must Release
// it when done; until then the snapshot's data is guaranteed immutable and
// alive regardless of how many epochs are installed meanwhile. The path is
// lock-free: a reader never waits on a writer.
func (s *Store) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn.tryAcquire() {
			// cur may have moved on while we pinned; that is fine — we
			// pinned a snapshot that was current a moment ago, which is
			// exactly the linearization Acquire promises.
			return sn
		}
		// The snapshot died between Load and pin (superseded and fully
		// released); the new current is already installed.
	}
}

// recycle returns a dead backing's array to the spare pool.
func (s *Store) recycle(data []uint32) {
	s.mu.Lock()
	s.recycleLocked(data)
	s.mu.Unlock()
}

func (s *Store) recycleLocked(data []uint32) {
	if len(s.spares) < maxSpares {
		s.spares = append(s.spares, data)
	}
}

// getBufferLocked pops a spare backing array or allocates a fresh one.
func (s *Store) getBufferLocked() []uint32 {
	if n := len(s.spares); n > 0 {
		buf := s.spares[n-1]
		s.spares = s.spares[:n-1]
		return buf
	}
	return make([]uint32, s.rows*s.lanes)
}

// validateWrites checks a batch against the table shape.
func (s *Store) validateWrites(writes []RowWrite) error {
	for i, w := range writes {
		if w.Row >= uint64(s.rows) {
			return fmt.Errorf("store: write %d targets row %d outside table of %d rows", i, w.Row, s.rows)
		}
		if len(w.Vals) != s.lanes {
			return fmt.Errorf("store: write %d (row %d) has %d lanes, table rows have %d", i, w.Row, len(w.Vals), s.lanes)
		}
	}
	return nil
}

// stageLocked builds the staged state for writes at the given epoch. An
// empty batch shares the current backing (an epoch tick costs no copy); a
// non-empty one copies the table and applies the writes in order.
func (s *Store) stageLocked(epoch uint64, writes []RowWrite) *staged {
	cur := s.cur.Load()
	if len(writes) == 0 {
		cur.b.refs.Add(1)
		return &staged{epoch: epoch, b: cur.b}
	}
	data := s.getBufferLocked()
	copy(data, cur.tab.Data)
	for _, w := range writes {
		copy(data[int(w.Row)*s.lanes:(int(w.Row)+1)*s.lanes], w.Vals)
	}
	b := &backing{data: data}
	b.refs.Store(1)
	return &staged{epoch: epoch, b: b}
}

// installLocked makes st the current snapshot, retiring the old current
// into prev (kept pinned so Abort can roll the commit back until the next
// commit supersedes it).
func (s *Store) installLocked(st *staged) *Snapshot {
	sn := &Snapshot{
		epoch: st.epoch,
		tab:   strategy.Table{NumRows: s.rows, Lanes: s.lanes, Data: st.b.data},
		b:     st.b,
		s:     s,
	}
	sn.refs.Store(1) // the store's reference
	old := s.cur.Load()
	s.cur.Store(sn)
	if s.prev != nil {
		s.prev.release(true) // the rollback window moves forward
	}
	s.prev = old // the store's reference on old moves from "current" to "rollback"
	return sn
}

// Apply installs the batch atomically as the next epoch and returns it.
// Readers pinned to the current epoch are not blocked and keep their view;
// the next Acquire sees the new epoch. Apply fails while a prepared epoch
// is outstanding — a store is either coordinated (Prepare/Commit) or
// direct (Apply), never both at once.
func (s *Store) Apply(writes []RowWrite) (uint64, error) {
	if err := s.validateWrites(writes); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return 0, fmt.Errorf("store: epoch %d is prepared but not committed; commit or abort it first", s.stage.epoch)
	}
	sn := s.installLocked(s.stageLocked(s.effectiveLocked()+1, writes))
	return sn.epoch, nil
}

// Prepare stages the batch as the given epoch, which must lie strictly
// above the store's effective epoch (a stale coordinator cannot replay an
// old epoch). The staged epoch is invisible to readers until Commit. Only
// one epoch may be staged at a time.
func (s *Store) Prepare(epoch uint64, writes []RowWrite) error {
	if err := s.validateWrites(writes); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return fmt.Errorf("store: epoch %d is already prepared; commit or abort it before preparing %d", s.stage.epoch, epoch)
	}
	if eff := s.effectiveLocked(); epoch <= eff {
		return fmt.Errorf("store: cannot prepare epoch %d at epoch %d (prepare must target a later epoch)", epoch, eff)
	}
	s.stage = s.stageLocked(epoch, writes)
	return nil
}

// Commit installs the staged epoch, which must match. Readers pinned to
// the previous epoch keep their view until they Release.
func (s *Store) Commit(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage == nil {
		return fmt.Errorf("store: no epoch is prepared (commit %d)", epoch)
	}
	if s.stage.epoch != epoch {
		return fmt.Errorf("store: epoch %d is prepared, cannot commit %d", s.stage.epoch, epoch)
	}
	s.installLocked(s.stage)
	s.stage = nil
	return nil
}

// Abort returns the store to the state before `epoch`, whatever phase the
// update died in: it drops a staged epoch, rolls back a committed current
// epoch to its predecessor (retained since the commit), and is a no-op —
// not an error — when the store never saw the epoch at all. In every case
// the epoch is burned: it will never be reissued. Coordinators fan Abort
// to every shard after a partial failure; idempotence is what lets them
// not track who got how far.
func (s *Store) Abort(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.burned {
		s.burned = epoch
	}
	if s.stage != nil && s.stage.epoch == epoch {
		st := s.stage
		s.stage = nil
		if st.b.refs.Add(-1) <= 0 {
			s.recycleLocked(st.b.data)
		}
		return nil
	}
	cur := s.cur.Load()
	if cur.epoch == epoch && s.prev != nil {
		// Roll the commit back: reinstate the predecessor as current.
		// prev still carries the store reference retained at commit time.
		prev := s.prev
		s.prev = nil
		s.cur.Store(prev)
		cur.release(true) // drop the store's reference on the rolled-back epoch
	}
	return nil
}

// Adopt is the import side of snapshot transfer: it overwrites rows
// [lo,hi) with vals (row-major, exactly (hi-lo)*lanes words) and installs
// the result atomically as `epoch`, then raises the burned floor to
// `floor`. A stale replica healing from a peer adopts the peer's snapshot
// epoch as its own and inherits the peer's effective epoch as its floor,
// so the two stores agree on both the epoch answers are tagged with and
// the epoch the next update must exceed — without the floor, a healed
// member whose donor had burned epochs would accept a Prepare the donor
// refuses and the pair would diverge again.
//
// Adopt requires epoch to lie strictly above the store's effective epoch
// (healing never moves a table backwards) and refuses while an epoch is
// prepared but uncommitted (the handshake owns the store's future then).
// Rows outside [lo,hi) keep their current content. Readers pinned to older
// epochs are unaffected, as with any install.
func (s *Store) Adopt(epoch, floor uint64, lo, hi int, vals []uint32) error {
	if lo < 0 || hi > s.rows || lo >= hi {
		return fmt.Errorf("store: adopt range [%d,%d) outside table of %d rows", lo, hi, s.rows)
	}
	if len(vals) != (hi-lo)*s.lanes {
		return fmt.Errorf("store: adopt of rows [%d,%d) needs %d words, got %d", lo, hi, (hi-lo)*s.lanes, len(vals))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return fmt.Errorf("store: epoch %d is prepared but not committed; cannot adopt epoch %d", s.stage.epoch, epoch)
	}
	if eff := s.effectiveLocked(); epoch <= eff {
		return fmt.Errorf("store: cannot adopt epoch %d at epoch %d (adopt must move forward)", epoch, eff)
	}
	cur := s.cur.Load()
	data := s.getBufferLocked()
	copy(data, cur.tab.Data)
	copy(data[lo*s.lanes:hi*s.lanes], vals)
	b := &backing{data: data}
	b.refs.Store(1)
	s.installLocked(&staged{epoch: epoch, b: b})
	if floor > s.burned {
		s.burned = floor
	}
	return nil
}

// Rollbackable reports whether Abort of the current epoch could still roll
// back (the predecessor is retained). Exposed for tests.
func (s *Store) Rollbackable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prev != nil
}
