// Package store owns the serving table: an epoch-versioned Store whose
// readers pin immutable snapshots while writers install whole new epochs.
// The paper's serving story assumes a stable table per query epoch; this
// package is where that assumption becomes a mechanism instead of a
// convention.
//
// A Snapshot is one epoch's table view, implementing strategy.TableView:
// the answer path streams it chunk-by-chunk (Chunks), which is what lets
// one read contract serve three backings — an in-RAM array (one maximal
// chunk, the SIMD kernel's fast path), a delta-epoch overlay chain
// (chunks split at patch boundaries), and a paged file backing for tables
// larger than memory (page-sized chunks through an LRU cache, see
// PagedBacking). Acquire pins the current snapshot (an atomic refcount,
// no lock on the read path) and Release unpins it; the backing of a fully
// released, superseded epoch is recycled (in-RAM arrays into a spare
// pool) or dropped (overlay patches).
//
// Writers never mutate in place. Apply stages a batch of row writes as an
// O(writes) patch layer — a sorted row→lanes overlay sharing the current
// epoch's backing — and atomically installs it as epoch N+1; readers
// pinned to N keep reading N, unblocked and unbothered (the
// -race-provable fix for the historical Update/Answer race). The full
// table is NOT copied per batch: write amplification is k·lanes words for
// a k-row batch. Chains of patches are folded back into a base copy when
// they exceed the configurable max chain depth (SetMaxChainDepth, default
// DefaultMaxChainDepth) — for a paged base the fold merges the patches
// into one overlay instead, never materializing the table in RAM. The
// two-phase form (Prepare / Commit / Abort) is the same installation
// split across a cluster handshake: every shard stages the target epoch,
// the coordinator commits only when all acked, and a straggler's Abort
// both drops a staged epoch and rolls back a committed-but-orphaned one,
// so a partial cluster failure leaves every shard readable at the old
// epoch.
//
// Epoch numbers never recur. An aborted epoch is burned: Epoch() and the
// next prepare/apply target skip past it, so a partial share pinned to a
// rolled-back epoch can never silently epoch-match a later, different
// table (the merge-consistency check a cluster runs would otherwise be
// blind to exactly the failure it exists to catch).
package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"gpudpf/internal/strategy"
)

// ErrNotContiguous is returned by Snapshot.Data, Snapshot.Table and
// Snapshot.RowRange when the snapshot's backing is not one contiguous
// in-RAM buffer (a delta-epoch overlay or a paged backing). The raw-buffer
// accessors never silently materialize a copy; callers that can stream
// should use Chunks, callers that need a copy should use CopyWords or
// strategy.TableFromView.
var ErrNotContiguous = errors.New("store: snapshot backing is not contiguous; use Chunks or CopyWords")

// RowWrite is one row overwrite in an update batch. Vals must be exactly
// the table's lane count wide. When a batch writes the same row twice, the
// later write wins (batches apply in order).
type RowWrite struct {
	Row  uint64
	Vals []uint32
}

// source is a backing's data provider — the polymorphism point behind the
// chunk iterator. Implementations are immutable once installed.
type source interface {
	// chunks calls fn over the contiguous row runs covering [lo, hi),
	// ascending, gap-free. The range is pre-validated by the caller.
	chunks(lo, hi int, fn func(strategy.Chunk) error) error
	// row returns row i. The slice stays valid while the source does.
	// Paged sources return copies: page buffers recycle after eviction, so
	// handing out page memory would let a reload overwrite it.
	row(i int) ([]uint32, error)
	// flat returns the whole table as one contiguous buffer when the
	// source is a single in-RAM array, nil otherwise.
	flat() []uint32
}

// ramSource is the classic in-RAM backing: one flat row-major array.
type ramSource struct {
	data  []uint32
	lanes int
}

func (r *ramSource) chunks(lo, hi int, fn func(strategy.Chunk) error) error {
	if lo == hi {
		return nil
	}
	return fn(strategy.Chunk{Row: lo, Data: r.data[lo*r.lanes : hi*r.lanes]})
}

func (r *ramSource) row(i int) ([]uint32, error) {
	return r.data[i*r.lanes : (i+1)*r.lanes], nil
}

func (r *ramSource) flat() []uint32 { return r.data }

// overlaySource is one delta epoch: a sorted set of overwritten rows (rows
// ascending, vals the matching row-major lane data) over a shared base
// backing. Reads merge the patch during chunk iteration: runs of base rows
// and runs of consecutive patched rows alternate as separate chunks. depth
// counts overlay layers down to the chain's root (1 = directly on a root).
type overlaySource struct {
	base  *backing
	rows  []int
	vals  []uint32
	lanes int
	depth int
}

func (o *overlaySource) chunks(lo, hi int, fn func(strategy.Chunk) error) error {
	i := sort.SearchInts(o.rows, lo)
	cur := lo
	for cur < hi {
		next := hi
		if i < len(o.rows) && o.rows[i] < hi {
			next = o.rows[i]
		}
		if cur < next {
			// A gap with no patched rows: the base's runs show through.
			if err := o.base.src.chunks(cur, next, fn); err != nil {
				return err
			}
			cur = next
			continue
		}
		// A run of consecutively patched rows is contiguous in vals (rows
		// is sorted and the run's indices are adjacent), so it is one
		// chunk.
		j := i
		for j+1 < len(o.rows) && o.rows[j+1] == o.rows[j]+1 && o.rows[j+1] < hi {
			j++
		}
		runLo, runHi := o.rows[i], o.rows[j]+1
		if err := fn(strategy.Chunk{Row: runLo, Data: o.vals[i*o.lanes : (i+runHi-runLo)*o.lanes]}); err != nil {
			return err
		}
		cur = runHi
		i = j + 1
	}
	return nil
}

func (o *overlaySource) row(i int) ([]uint32, error) {
	k := sort.SearchInts(o.rows, i)
	if k < len(o.rows) && o.rows[k] == i {
		return o.vals[k*o.lanes : (k+1)*o.lanes], nil
	}
	return o.base.src.row(i)
}

func (o *overlaySource) flat() []uint32 { return nil }

// backing is one epoch's data source plus the count of snapshots and
// overlays that still reference it. An empty Prepare (an epoch tick with
// no row writes) shares its predecessor's backing instead of copying the
// table, and every overlay shares its base, so the refcount is
// per-backing, not per-snapshot.
type backing struct {
	src  source
	refs atomic.Int64
}

// newBacking wraps src with one reference.
func newBacking(src source) *backing {
	b := &backing{src: src}
	b.refs.Store(1)
	return b
}

// chainDepth is the overlay depth of a backing (0 for a root).
func chainDepth(b *backing) int {
	if ov, ok := b.src.(*overlaySource); ok {
		return ov.depth
	}
	return 0
}

// chainRoot follows overlay bases down to the chain's root backing.
func chainRoot(b *backing) *backing {
	for {
		ov, ok := b.src.(*overlaySource)
		if !ok {
			return b
		}
		b = ov.base
	}
}

// Snapshot is one epoch's immutable table view, implementing
// strategy.TableView. It is safe for concurrent readers; nothing ever
// mutates its data. Callers that obtained it from Acquire must Release it
// exactly once — the backing of a superseded epoch is reclaimed when its
// last reference drops.
type Snapshot struct {
	epoch       uint64
	rows, lanes int
	b           *backing
	s           *Store
	// refs counts pins on this snapshot: the store's own reference while
	// current (or retained for rollback), plus one per outstanding
	// Acquire. At zero the snapshot is dead and its backing reference is
	// returned.
	refs atomic.Int64
}

// Epoch returns the snapshot's epoch (0 for a freshly adopted table).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Rows returns the table's row count (immutable across epochs).
func (sn *Snapshot) Rows() int { return sn.rows }

// Lanes returns the table's lane count (immutable across epochs).
func (sn *Snapshot) Lanes() int { return sn.lanes }

// Chunks implements strategy.TableView: it calls fn for each contiguous
// row run covering rows [lo, hi) of this epoch, in ascending row order.
// This is THE snapshot read path — it works for every backing and is what
// the strategies' accumulateTile streams.
func (sn *Snapshot) Chunks(lo, hi int, fn func(strategy.Chunk) error) error {
	if lo < 0 || hi > sn.rows || lo > hi {
		return fmt.Errorf("store: row range [%d,%d) outside table of %d rows", lo, hi, sn.rows)
	}
	return sn.b.src.chunks(lo, hi, fn)
}

// Row returns row i of this epoch, valid until Release. A paged backing
// may fail the underlying page read.
func (sn *Snapshot) Row(i int) ([]uint32, error) {
	if i < 0 || i >= sn.rows {
		return nil, fmt.Errorf("store: row %d outside table of %d rows", i, sn.rows)
	}
	return sn.b.src.row(i)
}

// Table returns the snapshot's table as a *strategy.Table.
//
// Deprecated: this raw-buffer accessor only works when the epoch's backing
// is one contiguous in-RAM array (a freshly adopted table or a compacted
// epoch); delta-epoch overlays and paged backings return ErrNotContiguous
// rather than silently materializing a copy. New code should consume the
// snapshot as a strategy.TableView (Chunks/RowRange), or materialize
// explicitly with strategy.TableFromView.
func (sn *Snapshot) Table() (*strategy.Table, error) {
	flat := sn.b.src.flat()
	if flat == nil {
		return nil, ErrNotContiguous
	}
	return &strategy.Table{NumRows: sn.rows, Lanes: sn.lanes, Data: flat}, nil
}

// Data returns this epoch's contiguous row-major lane buffer, valid until
// Release.
//
// Deprecated: like Table, this only works for a contiguous in-RAM backing
// and returns ErrNotContiguous otherwise. Use Chunks (streaming) or
// CopyWords (copying) instead.
func (sn *Snapshot) Data() ([]uint32, error) {
	flat := sn.b.src.flat()
	if flat == nil {
		return nil, ErrNotContiguous
	}
	return flat, nil
}

// RowRange returns rows [lo, hi) of this epoch as one zero-copy slice,
// valid until Release. Only a contiguous in-RAM backing can do this;
// overlaid and paged epochs return ErrNotContiguous (stream with Chunks
// or copy with CopyWords instead). The index arithmetic is safe by
// construction: New/NewPaged reject shapes whose rows×lanes product would
// overflow, and the range is bounds-checked here.
func (sn *Snapshot) RowRange(lo, hi int) ([]uint32, error) {
	if lo < 0 || hi > sn.rows || lo > hi {
		return nil, fmt.Errorf("store: row range [%d,%d) outside table of %d rows", lo, hi, sn.rows)
	}
	flat := sn.b.src.flat()
	if flat == nil {
		return nil, ErrNotContiguous
	}
	return flat[lo*sn.lanes : hi*sn.lanes], nil
}

// CopyWords copies words [off, off+len(dst)) of the epoch's row-major
// buffer into dst, assembling from chunks — it works for every backing
// and is the export side of snapshot transfer: a healer streams these
// word windows (framed by the wire layer) to a stale peer's Adopt. The
// window need not be row-aligned.
func (sn *Snapshot) CopyWords(off int, dst []uint32) error {
	words := sn.rows * sn.lanes
	if off < 0 || off > words || len(dst) > words-off {
		return fmt.Errorf("store: word window [%d,%d) outside table of %d words", off, off+len(dst), words)
	}
	if len(dst) == 0 {
		return nil
	}
	lanes := sn.lanes
	rowLo := off / lanes
	rowHi := (off + len(dst) + lanes - 1) / lanes
	return sn.b.src.chunks(rowLo, rowHi, func(c strategy.Chunk) error {
		cLo := c.Row * lanes
		start, end := cLo, cLo+len(c.Data)
		if start < off {
			start = off
		}
		if end > off+len(dst) {
			end = off + len(dst)
		}
		if start < end {
			copy(dst[start-off:end-off], c.Data[start-cLo:end-cLo])
		}
		return nil
	})
}

// tryAcquire pins the snapshot unless it is already dead (refs hit zero
// between the caller loading the pointer and pinning it).
func (sn *Snapshot) tryAcquire() bool {
	for {
		n := sn.refs.Load()
		if n <= 0 {
			return false
		}
		if sn.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release unpins the snapshot. The last release of a superseded epoch
// reclaims its backing (recycling in-RAM arrays into the spare pool).
func (sn *Snapshot) Release() { sn.release(false) }

// release is Release with the store's writer lock state made explicit:
// writer-side code that drops references while holding s.mu must not
// re-enter it through the reclamation path.
func (sn *Snapshot) release(locked bool) {
	if sn.refs.Add(-1) > 0 {
		return
	}
	if locked {
		sn.s.releaseBackingLocked(sn.b)
	} else {
		sn.s.releaseBacking(sn.b)
	}
}

// staged is a prepared-but-uncommitted epoch.
type staged struct {
	epoch uint64
	b     *backing
}

// Store is the epoch-versioned owner of one replica's table.
type Store struct {
	rows, lanes int
	words       int // rows*lanes, overflow-checked at construction

	// cur is the current epoch's snapshot; the store holds one reference
	// on it (dropped when a commit supersedes it).
	cur atomic.Pointer[Snapshot]

	// mu serializes writers: Apply, Prepare, Commit, Abort, and backing
	// reclamation. The read path (Acquire/Release) never takes it.
	mu       sync.Mutex
	stage    *staged
	prev     *Snapshot // last superseded epoch, retained (with a ref) so Abort can roll back
	burned   uint64    // highest aborted epoch; never reissued
	spares   [][]uint32
	maxDepth int // overlay chain depth that triggers compaction
}

// maxSpares bounds the recycled-backing pool: current + previous + one
// in-flight copy is the steady-state working set; anything beyond is heap
// the store should give back.
const maxSpares = 2

// DefaultMaxChainDepth is the default overlay chain depth bound: a write
// batch landing on a chain this deep folds the chain into a fresh base
// copy (or, over a paged root, into one merged overlay) instead of adding
// a layer. Depth trades read-time merge work (one binary search + run
// split per layer) against write amplification (a fold costs a full-table
// copy for RAM roots).
const DefaultMaxChainDepth = 4

// checkShape validates a table shape, returning rows*lanes. The products
// rows×lanes and rows×lanes×4 (the byte size, which paged files and wire
// offsets compute) must fit without overflow, so huge-table configs fail
// loudly here instead of wrapping a slice index downstream.
func checkShape(rows, lanes int) (int, error) {
	if rows <= 0 || lanes <= 0 {
		return 0, fmt.Errorf("store: invalid table shape %d×%d", rows, lanes)
	}
	if uint64(rows) > math.MaxInt64/4/uint64(lanes) {
		return 0, fmt.Errorf("store: table shape %d×%d overflows (%d words of 4 bytes)", rows, lanes, uint64(rows)*uint64(lanes))
	}
	return rows * lanes, nil
}

// New builds a Store over tab, adopted as epoch 0. The store takes
// ownership of tab's backing array: the caller must not mutate it after
// New (all writes go through Apply or Prepare/Commit).
func New(tab *strategy.Table) (*Store, error) {
	if tab == nil {
		return nil, fmt.Errorf("store: needs a non-empty table")
	}
	words, err := checkShape(tab.NumRows, tab.Lanes)
	if err != nil {
		return nil, err
	}
	if len(tab.Data) != words {
		return nil, fmt.Errorf("store: table data is %d words, shape %d×%d needs %d",
			len(tab.Data), tab.NumRows, tab.Lanes, words)
	}
	return newStore(tab.NumRows, tab.Lanes, words, &ramSource{data: tab.Data, lanes: tab.Lanes}), nil
}

// NewPaged builds a Store whose epoch 0 is served from a paged file
// backing (see OpenPaged): the table never needs to fit in RAM. Updates
// layer delta epochs over the paged root; compaction merges them into one
// overlay rather than materializing the table.
func NewPaged(pb *PagedBacking) (*Store, error) {
	if pb == nil {
		return nil, fmt.Errorf("store: needs a paged backing")
	}
	words, err := checkShape(pb.rows, pb.lanes)
	if err != nil {
		return nil, err
	}
	return newStore(pb.rows, pb.lanes, words, &pagedSource{p: pb}), nil
}

func newStore(rows, lanes, words int, src source) *Store {
	s := &Store{rows: rows, lanes: lanes, words: words, maxDepth: DefaultMaxChainDepth}
	sn := &Snapshot{rows: rows, lanes: lanes, b: newBacking(src), s: s}
	sn.refs.Store(1) // the store's own reference
	s.cur.Store(sn)
	return s
}

// SetMaxChainDepth bounds the delta-epoch overlay chain (minimum 1; see
// DefaultMaxChainDepth). Safe to call concurrently with updates; affects
// batches staged after it returns.
func (s *Store) SetMaxChainDepth(d int) {
	if d < 1 {
		d = 1
	}
	s.mu.Lock()
	s.maxDepth = d
	s.mu.Unlock()
}

// Shape returns the table's row and lane counts (immutable across epochs).
func (s *Store) Shape() (rows, lanes int) { return s.rows, s.lanes }

// Epoch returns the store's effective epoch: the current snapshot's, or
// the highest aborted epoch if that is newer (aborted epochs are burned,
// not reissued). The next successful update lands strictly above it.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.effectiveLocked()
}

func (s *Store) effectiveLocked() uint64 {
	e := s.cur.Load().epoch
	if s.burned > e {
		e = s.burned
	}
	return e
}

// Acquire pins and returns the current snapshot. The caller must Release
// it when done; until then the snapshot's data is guaranteed immutable and
// alive regardless of how many epochs are installed meanwhile. The path is
// lock-free: a reader never waits on a writer.
func (s *Store) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn.tryAcquire() {
			// cur may have moved on while we pinned; that is fine — we
			// pinned a snapshot that was current a moment ago, which is
			// exactly the linearization Acquire promises.
			return sn
		}
		// The snapshot died between Load and pin (superseded and fully
		// released); the new current is already installed.
	}
}

// releaseBacking drops one reference on b, reclaiming dead backings: a
// dead overlay releases its base in turn (unwinding the chain), a dead
// in-RAM root recycles its array, a dead paged root is left to the
// PagedBacking's owner.
func (s *Store) releaseBacking(b *backing) {
	s.mu.Lock()
	s.releaseBackingLocked(b)
	s.mu.Unlock()
}

func (s *Store) releaseBackingLocked(b *backing) {
	for b != nil {
		if b.refs.Add(-1) > 0 {
			return
		}
		switch src := b.src.(type) {
		case *ramSource:
			s.recycleLocked(src.data)
			return
		case *overlaySource:
			b = src.base // the overlay's arrays go to the GC; unwind
		default:
			return // paged root: the file outlives epochs
		}
	}
}

func (s *Store) recycleLocked(data []uint32) {
	if len(s.spares) < maxSpares {
		s.spares = append(s.spares, data)
	}
}

// getBufferLocked pops a spare backing array or allocates a fresh one.
func (s *Store) getBufferLocked() []uint32 {
	if n := len(s.spares); n > 0 {
		buf := s.spares[n-1]
		s.spares = s.spares[:n-1]
		return buf
	}
	return make([]uint32, s.words)
}

// validateWrites checks a batch against the table shape.
func (s *Store) validateWrites(writes []RowWrite) error {
	for i, w := range writes {
		if w.Row >= uint64(s.rows) {
			return fmt.Errorf("store: write %d targets row %d outside table of %d rows", i, w.Row, s.rows)
		}
		if len(w.Vals) != s.lanes {
			return fmt.Errorf("store: write %d (row %d) has %d lanes, table rows have %d", i, w.Row, len(w.Vals), s.lanes)
		}
	}
	return nil
}

// dedupWrites sorts a validated batch into overlay form: ascending unique
// rows with the batch's last write per row winning. Cost is O(k log k)
// time and O(k·lanes) space for a k-write batch — the whole point of
// delta epochs.
func dedupWrites(writes []RowWrite, lanes int) (rows []int, vals []uint32) {
	idx := make([]int, len(writes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := writes[idx[a]].Row, writes[idx[b]].Row
		if ra != rb {
			return ra < rb
		}
		return idx[a] < idx[b]
	})
	rows = make([]int, 0, len(writes))
	vals = make([]uint32, 0, len(writes)*lanes)
	for _, i := range idx {
		r := int(writes[i].Row)
		if n := len(rows); n > 0 && rows[n-1] == r {
			copy(vals[(n-1)*lanes:], writes[i].Vals) // later write wins
			continue
		}
		rows = append(rows, r)
		vals = append(vals, writes[i].Vals...)
	}
	return rows, vals
}

// stageLocked builds the staged state for writes at the given epoch. An
// empty batch shares the current backing (an epoch tick costs no copy); a
// non-empty one layers an O(writes) overlay over it (folding the chain
// when it is maxDepth deep).
func (s *Store) stageLocked(epoch uint64, writes []RowWrite) *staged {
	cur := s.cur.Load()
	if len(writes) == 0 {
		cur.b.refs.Add(1)
		return &staged{epoch: epoch, b: cur.b}
	}
	rows, vals := dedupWrites(writes, s.lanes)
	return &staged{epoch: epoch, b: s.patchLocked(cur.b, rows, vals)}
}

// patchLocked layers the overlay-form patch (rows, vals) over base,
// compacting instead when the chain would exceed maxDepth. The patch
// arrays are owned by the result.
func (s *Store) patchLocked(base *backing, rows []int, vals []uint32) *backing {
	depth := chainDepth(base) + 1
	if depth > s.maxDepth {
		return s.compactLocked(base, rows, vals)
	}
	base.refs.Add(1)
	return newBacking(&overlaySource{base: base, rows: rows, vals: vals, lanes: s.lanes, depth: depth})
}

// compactLocked folds base's overlay chain together with the new patch.
// Over an in-RAM root the fold materializes a fresh flat copy (reusing the
// spare pool, so steady-state churn alternates buffers instead of growing
// the heap). Over a paged root the table is never materialized: every
// layer's patches merge into ONE overlay directly on the root.
func (s *Store) compactLocked(base *backing, rows []int, vals []uint32) *backing {
	root := chainRoot(base)
	if _, paged := root.src.(*pagedSource); paged {
		mrows, mvals := mergeChain(base, rows, vals, s.lanes)
		root.refs.Add(1)
		return newBacking(&overlaySource{base: root, rows: mrows, vals: mvals, lanes: s.lanes, depth: 1})
	}
	data := s.getBufferLocked()
	// RAM chains cannot fail chunk iteration.
	_ = base.src.chunks(0, s.rows, func(c strategy.Chunk) error {
		copy(data[c.Row*s.lanes:], c.Data)
		return nil
	})
	for i, r := range rows {
		copy(data[r*s.lanes:(r+1)*s.lanes], vals[i*s.lanes:(i+1)*s.lanes])
	}
	return newBacking(&ramSource{data: data, lanes: s.lanes})
}

// mergeChain flattens every overlay layer of base's chain plus the new
// topmost patch (rows, vals) into one overlay-form patch. Upper layers
// win on row collisions.
func mergeChain(base *backing, rows []int, vals []uint32, lanes int) ([]int, []uint32) {
	// Collect layers bottom→top, then apply in order so later layers win.
	var layers []*overlaySource
	for b := base; ; {
		ov, ok := b.src.(*overlaySource)
		if !ok {
			break
		}
		layers = append([]*overlaySource{ov}, layers...)
		b = ov.base
	}
	merged := make(map[int][]uint32)
	for _, ov := range layers {
		for i, r := range ov.rows {
			merged[r] = ov.vals[i*lanes : (i+1)*lanes]
		}
	}
	for i, r := range rows {
		merged[r] = vals[i*lanes : (i+1)*lanes]
	}
	mrows := make([]int, 0, len(merged))
	for r := range merged {
		mrows = append(mrows, r)
	}
	sort.Ints(mrows)
	mvals := make([]uint32, 0, len(merged)*lanes)
	for _, r := range mrows {
		mvals = append(mvals, merged[r]...)
	}
	return mrows, mvals
}

// installLocked makes st the current snapshot, retiring the old current
// into prev (kept pinned so Abort can roll the commit back until the next
// commit supersedes it).
func (s *Store) installLocked(st *staged) *Snapshot {
	sn := &Snapshot{epoch: st.epoch, rows: s.rows, lanes: s.lanes, b: st.b, s: s}
	sn.refs.Store(1) // the store's reference
	old := s.cur.Load()
	s.cur.Store(sn)
	if s.prev != nil {
		s.prev.release(true) // the rollback window moves forward
	}
	s.prev = old // the store's reference on old moves from "current" to "rollback"
	return sn
}

// Apply installs the batch atomically as the next epoch and returns it.
// Readers pinned to the current epoch are not blocked and keep their view;
// the next Acquire sees the new epoch. Apply fails while a prepared epoch
// is outstanding — a store is either coordinated (Prepare/Commit) or
// direct (Apply), never both at once. A k-row batch costs O(k·lanes)
// (overlay-form patch), not a table copy, until chain compaction.
func (s *Store) Apply(writes []RowWrite) (uint64, error) {
	if err := s.validateWrites(writes); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return 0, fmt.Errorf("store: epoch %d is prepared but not committed; commit or abort it first", s.stage.epoch)
	}
	sn := s.installLocked(s.stageLocked(s.effectiveLocked()+1, writes))
	return sn.epoch, nil
}

// Prepare stages the batch as the given epoch, which must lie strictly
// above the store's effective epoch (a stale coordinator cannot replay an
// old epoch). The staged epoch is invisible to readers until Commit. Only
// one epoch may be staged at a time.
func (s *Store) Prepare(epoch uint64, writes []RowWrite) error {
	if err := s.validateWrites(writes); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return fmt.Errorf("store: epoch %d is already prepared; commit or abort it before preparing %d", s.stage.epoch, epoch)
	}
	if eff := s.effectiveLocked(); epoch <= eff {
		return fmt.Errorf("store: cannot prepare epoch %d at epoch %d (prepare must target a later epoch)", epoch, eff)
	}
	s.stage = s.stageLocked(epoch, writes)
	return nil
}

// Commit installs the staged epoch, which must match. Readers pinned to
// the previous epoch keep their view until they Release.
func (s *Store) Commit(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage == nil {
		return fmt.Errorf("store: no epoch is prepared (commit %d)", epoch)
	}
	if s.stage.epoch != epoch {
		return fmt.Errorf("store: epoch %d is prepared, cannot commit %d", s.stage.epoch, epoch)
	}
	s.installLocked(s.stage)
	s.stage = nil
	return nil
}

// Abort returns the store to the state before `epoch`, whatever phase the
// update died in: it drops a staged epoch, rolls back a committed current
// epoch to its predecessor (retained since the commit), and is a no-op —
// not an error — when the store never saw the epoch at all. In every case
// the epoch is burned: it will never be reissued. Coordinators fan Abort
// to every shard after a partial failure; idempotence is what lets them
// not track who got how far. Rollback works across a compaction: prev
// pins its own backing chain, so reinstating it is pointer surgery
// regardless of what the aborted epoch's backing looked like.
func (s *Store) Abort(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.burned {
		s.burned = epoch
	}
	if s.stage != nil && s.stage.epoch == epoch {
		st := s.stage
		s.stage = nil
		s.releaseBackingLocked(st.b)
		return nil
	}
	cur := s.cur.Load()
	if cur.epoch == epoch && s.prev != nil {
		// Roll the commit back: reinstate the predecessor as current.
		// prev still carries the store reference retained at commit time.
		prev := s.prev
		s.prev = nil
		s.cur.Store(prev)
		cur.release(true) // drop the store's reference on the rolled-back epoch
	}
	return nil
}

// Adopt is the import side of snapshot transfer: it overwrites rows
// [lo,hi) with vals (row-major, exactly (hi-lo)*lanes words) and installs
// the result atomically as `epoch`, then raises the burned floor to
// `floor`. A stale replica healing from a peer adopts the peer's snapshot
// epoch as its own and inherits the peer's effective epoch as its floor,
// so the two stores agree on both the epoch answers are tagged with and
// the epoch the next update must exceed — without the floor, a healed
// member whose donor had burned epochs would accept a Prepare the donor
// refuses and the pair would diverge again.
//
// Adopt requires epoch to lie strictly above the store's effective epoch
// (healing never moves a table backwards) and refuses while an epoch is
// prepared but uncommitted (the handshake owns the store's future then).
// Rows outside [lo,hi) keep their current content. Readers pinned to older
// epochs are unaffected, as with any install. Like Apply, the adopted
// range lands as an overlay patch (consecutive rows), so a partial-range
// heal does not copy the table.
func (s *Store) Adopt(epoch, floor uint64, lo, hi int, vals []uint32) error {
	if lo < 0 || hi > s.rows || lo >= hi {
		return fmt.Errorf("store: adopt range [%d,%d) outside table of %d rows", lo, hi, s.rows)
	}
	if len(vals) != (hi-lo)*s.lanes {
		return fmt.Errorf("store: adopt of rows [%d,%d) needs %d words, got %d", lo, hi, (hi-lo)*s.lanes, len(vals))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage != nil {
		return fmt.Errorf("store: epoch %d is prepared but not committed; cannot adopt epoch %d", s.stage.epoch, epoch)
	}
	if eff := s.effectiveLocked(); epoch <= eff {
		return fmt.Errorf("store: cannot adopt epoch %d at epoch %d (adopt must move forward)", epoch, eff)
	}
	rows := make([]int, hi-lo)
	for i := range rows {
		rows[i] = lo + i
	}
	pv := make([]uint32, len(vals))
	copy(pv, vals)
	cur := s.cur.Load()
	s.installLocked(&staged{epoch: epoch, b: s.patchLocked(cur.b, rows, pv)})
	if floor > s.burned {
		s.burned = floor
	}
	return nil
}

// Rollbackable reports whether Abort of the current epoch could still roll
// back (the predecessor is retained). Exposed for tests.
func (s *Store) Rollbackable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prev != nil
}

// ChainDepth returns the current epoch's overlay chain depth (0 =
// contiguous base). Exposed for tests and introspection.
func (s *Store) ChainDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return chainDepth(s.cur.Load().b)
}
