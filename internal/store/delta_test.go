package store

import (
	"errors"
	"runtime"
	"testing"

	"gpudpf/internal/strategy"
)

// viewWords materializes a snapshot's full word buffer through the chunk
// iterator — the reference read for every equivalence check here.
func viewWords(t testing.TB, sn *Snapshot) []uint32 {
	t.Helper()
	out := make([]uint32, sn.Rows()*sn.Lanes())
	err := sn.Chunks(0, sn.Rows(), func(c strategy.Chunk) error {
		copy(out[c.Row*sn.Lanes():], c.Data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// applyWords computes the expected table content after overwriting rows.
func applyWords(base []uint32, lanes int, writes []RowWrite) []uint32 {
	out := append([]uint32(nil), base...)
	for _, w := range writes {
		copy(out[int(w.Row)*lanes:(int(w.Row)+1)*lanes], w.Vals)
	}
	return out
}

// TestOverlayReads: a k-row Apply lands as an overlay (depth 1), and every
// read surface — Chunks, Row, CopyWords — merges the patch over the base,
// while the raw contiguous accessors refuse with ErrNotContiguous.
func TestOverlayReads(t *testing.T) {
	const rows, lanes = 64, 3
	s := testStore(t, rows, lanes)
	base := viewWords(t, func() *Snapshot { sn := s.Acquire(); defer sn.Release(); return sn }())

	writes := []RowWrite{
		{Row: 0, Vals: row(100, 101, 102)},
		{Row: 5, Vals: row(200, 201, 202)},
		{Row: 6, Vals: row(300, 301, 302)}, // adjacent to 5: one patched run
		{Row: 63, Vals: row(400, 401, 402)},
	}
	if _, err := s.Apply(writes); err != nil {
		t.Fatal(err)
	}
	if d := s.ChainDepth(); d != 1 {
		t.Fatalf("chain depth %d after one apply, want 1", d)
	}
	sn := s.Acquire()
	defer sn.Release()
	want := applyWords(base, lanes, writes)

	// Chunks over the full range merge patch and base.
	got := viewWords(t, sn)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d: chunked read %d, want %d", i, got[i], want[i])
		}
	}
	// Chunk geometry: runs must be ascending, gap-free, and within range.
	next := 10
	err := sn.Chunks(10, 60, func(c strategy.Chunk) error {
		if c.Row != next {
			t.Fatalf("chunk starts at row %d, want %d", c.Row, next)
		}
		if len(c.Data)%lanes != 0 || len(c.Data) == 0 {
			t.Fatalf("chunk at row %d has %d words", c.Row, len(c.Data))
		}
		next = c.Row + len(c.Data)/lanes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 60 {
		t.Fatalf("chunks covered up to row %d, want 60", next)
	}
	// Row reads hit the patch and the base.
	if got := rowOf(sn, 5); got[0] != 200 {
		t.Fatalf("patched row 5 = %v", got)
	}
	if got := rowOf(sn, 7); got[0] != base[7*lanes] {
		t.Fatalf("base row 7 = %v, want %d", got, base[7*lanes])
	}
	// CopyWords assembles an unaligned window across patch boundaries.
	win := make([]uint32, 3*lanes+1)
	if err := sn.CopyWords(4*lanes+1, win); err != nil {
		t.Fatal(err)
	}
	for i := range win {
		if win[i] != want[4*lanes+1+i] {
			t.Fatalf("CopyWords word %d: %d, want %d", i, win[i], want[4*lanes+1+i])
		}
	}
	// Raw contiguous accessors refuse on an overlaid epoch.
	if _, err := sn.Data(); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("Data on overlay: %v, want ErrNotContiguous", err)
	}
	if _, err := sn.Table(); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("Table on overlay: %v, want ErrNotContiguous", err)
	}
	if _, err := sn.RowRange(0, rows); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("RowRange on overlay: %v, want ErrNotContiguous", err)
	}
}

// TestCompactionAtMaxDepth: the chain never exceeds the configured depth,
// folds exactly at the bound, and the folded epoch is contiguous again
// with the cumulative content of every layer.
func TestCompactionAtMaxDepth(t *testing.T) {
	const rows, lanes = 32, 2
	s := testStore(t, rows, lanes)
	s.SetMaxChainDepth(2)
	expect := viewWords(t, func() *Snapshot { sn := s.Acquire(); defer sn.Release(); return sn }())

	for i := 0; i < 7; i++ {
		writes := []RowWrite{{Row: uint64(i % rows), Vals: row(uint32(1000 + i), uint32(2000 + i))}}
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
		expect = applyWords(expect, lanes, writes)
		if d := s.ChainDepth(); d > 2 {
			t.Fatalf("apply %d: chain depth %d exceeds bound 2", i, d)
		}
		sn := s.Acquire()
		got := viewWords(t, sn)
		sn.Release()
		for w := range expect {
			if got[w] != expect[w] {
				t.Fatalf("apply %d word %d: %d, want %d", i, w, got[w], expect[w])
			}
		}
	}
	// Depths cycle 1, 2, 0(fold), 1, 2, 0(fold), 1 over the seven applies.
	if d := s.ChainDepth(); d != 1 {
		t.Fatalf("final chain depth %d, want 1", d)
	}
	// A folded epoch earlier in the cycle is contiguous: force one now.
	if _, err := s.Apply(uniformWrites(lanes, 9, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(uniformWrites(lanes, 9, 1)); err != nil {
		t.Fatal(err)
	}
	if d := s.ChainDepth(); d != 0 {
		t.Fatalf("depth %d after fold, want 0", d)
	}
	sn := s.Acquire()
	defer sn.Release()
	if _, err := sn.Data(); err != nil {
		t.Fatalf("folded epoch not contiguous: %v", err)
	}
}

// TestAbortAcrossCompaction: rolling back a committed epoch whose install
// compacted the chain reinstates the overlaid predecessor bit-for-bit —
// rollback is pointer surgery on retained backings, whatever their shape.
func TestAbortAcrossCompaction(t *testing.T) {
	const rows, lanes = 16, 2
	s := testStore(t, rows, lanes)
	s.SetMaxChainDepth(1)
	// Epoch 1: an overlay at the depth bound.
	if _, err := s.Apply([]RowWrite{{Row: 3, Vals: row(71, 72)}}); err != nil {
		t.Fatal(err)
	}
	if d := s.ChainDepth(); d != 1 {
		t.Fatalf("depth %d, want 1", d)
	}
	pre := viewWords(t, func() *Snapshot { sn := s.Acquire(); defer sn.Release(); return sn }())

	// Epoch 2 via the two-phase path: the fold happens at Prepare.
	if err := s.Prepare(2, []RowWrite{{Row: 4, Vals: row(81, 82)}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if d := s.ChainDepth(); d != 0 {
		t.Fatalf("depth %d after compacting commit, want 0", d)
	}
	// Roll epoch 2 back: epoch 1's overlay chain must be reinstated intact.
	if err := s.Abort(2); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 1 {
		t.Fatalf("rolled back to epoch %d, want 1", sn.Epoch())
	}
	got := viewWords(t, sn)
	for i := range pre {
		if got[i] != pre[i] {
			t.Fatalf("word %d after rollback: %d, want %d", i, got[i], pre[i])
		}
	}
	if got := rowOf(sn, 4); got[0] == 81 {
		t.Fatal("aborted epoch's write visible after rollback")
	}
	// Epoch 2 is burned; the store keeps updating fine.
	if epoch, err := s.Apply(nil); err != nil || epoch != 3 {
		t.Fatalf("post-rollback apply: epoch %d, err %v", epoch, err)
	}
}

// TestApplyAllocBytes is the O(k·lanes) write-amplification contract: a
// k-row Apply on a 2^16-row table must allocate on the order of the patch,
// not the table — no full copy until compaction, and compaction folds reuse
// the spare pool.
func TestApplyAllocBytes(t *testing.T) {
	const rows, lanes, k = 1 << 16, 16, 16
	s := testStore(t, rows, lanes) // 4 MiB table
	targets := make([]uint64, k)
	for i := range targets {
		targets[i] = uint64(i * (rows / k))
	}
	writes := uniformWrites(lanes, 7, targets...)
	// Warm to steady state: past the first fold, the spare pool carries the
	// flat buffers and per-apply allocation settles.
	for i := 0; i < 3*(DefaultMaxChainDepth+1); i++ {
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const iters = 2 * (DefaultMaxChainDepth + 1) // whole fold cycles
	for i := 0; i < iters; i++ {
		if _, err := s.Apply(writes); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)
	perOp := (m1.TotalAlloc - m0.TotalAlloc) / iters
	// The patch is k·lanes·4 = 1 KiB plus book-keeping; the table is
	// 4 MiB. Allow generous slack for the runtime while staying orders of
	// magnitude below a per-apply table copy.
	const bound = 64 << 10
	if perOp > bound {
		t.Fatalf("steady-state %d-row Apply allocates %d B/op (table is %d B); want ≤ %d",
			k, perOp, rows*lanes*4, bound)
	}
}

// TestShapeOverflowRejected: rows×lanes products that overflow are refused
// at construction — the guard that keeps RowRange/Chunks index arithmetic
// safe everywhere downstream.
func TestShapeOverflowRejected(t *testing.T) {
	if _, err := checkShape(1<<40, 1<<40); err == nil {
		t.Fatal("overflowing shape accepted")
	}
	if _, err := checkShape(0, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := checkShape(1<<20, 16); err != nil {
		t.Fatalf("sane shape refused: %v", err)
	}
}
