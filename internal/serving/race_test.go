package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/strategy"
)

// TestConcurrentEngineServing drives the full concurrent request path —
// many goroutines submitting mixed-size batches through a Batcher backed
// by a sharded engine.Replica, with concurrent row updates in flight — and
// asserts every answer matches the sequential single-shard reference.
// Run under -race (the CI configuration) this pins the locking story of
// the whole serving stack.
func TestConcurrentEngineServing(t *testing.T) {
	const rows, lanes = 512, 4
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}

	// The engine under test: sharded, engine-backed batcher.
	eng, err := engine.NewReplica(tab, engine.Config{Party: 0, Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngineBatcher(Policy{MaxBatch: 16, MaxDelay: 2 * time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The sequential reference: its own unsharded replica over a snapshot
	// of the table. The concurrent updates below rewrite rows with their
	// existing values — a semantic no-op (so shares stay comparable; a DPF
	// share depends on every row) that still exercises the full
	// Update/Answer write-lock path.
	refTab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	copy(refTab.Data, tab.Data)
	snapshot := make([]uint32, len(tab.Data))
	copy(snapshot, tab.Data)
	ref, err := engine.NewReplica(refTab, engine.Config{Party: 0, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-generate keys for a pool of queried indices and the expected
	// sequential shares.
	prg := dpf.NewAESPRG()
	const poolSize = 24
	keyPool := make([][]byte, poolSize)
	keyRng := rand.New(rand.NewSource(2))
	for i := range keyPool {
		k0, _, err := dpf.Gen(prg, uint64(keyRng.Intn(rows)), tab.Bits(), []uint32{1}, keyRng)
		if err != nil {
			t.Fatal(err)
		}
		keyPool[i], err = k0.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
	}
	want := make([][]uint32, poolSize)
	for i, raw := range keyPool {
		ans, err := ref.Answer(context.Background(), [][]byte{raw})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans[0]
	}

	const workers = 8
	const perWorker = 20
	var wg, uwg sync.WaitGroup
	// An updater continuously rewrites random rows (with their snapshot
	// values) to hammer the Update/Answer serialization.
	stop := make(chan struct{})
	uwg.Add(1)
	go func() {
		defer uwg.Done()
		urng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := urng.Intn(rows)
			if err := eng.Update(uint64(r), snapshot[r*lanes:(r+1)*lanes]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Submitters: mixed-size bursts (1, SubmitAll of 3, 7, ...).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				n := 1 + srng.Intn(7)
				idxs := make([]int, n)
				keys := make([][]byte, n)
				for j := range keys {
					idxs[j] = srng.Intn(poolSize)
					keys[j] = keyPool[idxs[j]]
				}
				answers, err := b.SubmitAll(keys)
				if err != nil {
					t.Error(err)
					return
				}
				for j, ans := range answers {
					for l := range ans {
						if ans[l] != want[idxs[j]][l] {
							t.Errorf("worker %d burst %d key %d lane %d: %d != sequential %d",
								w, i, j, l, ans[l], want[idxs[j]][l])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	uwg.Wait()
}
