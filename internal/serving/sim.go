package serving

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// BatchLatency models one batch's device execution time as a function of
// batch size (e.g. a closure over strategy.Model).
type BatchLatency func(batch int) time.Duration

// LoadPoint is one offered-load measurement from Simulate.
type LoadPoint struct {
	// OfferedQPS is the Poisson arrival rate; CompletedQPS the measured
	// completion rate.
	OfferedQPS, CompletedQPS float64
	// Mean, P50, P95 and P99 are request latencies (arrival → batch
	// completion).
	Mean, P50, P95, P99 time.Duration
	// MeanBatch is the average formed batch size; Utilization is the
	// device busy fraction.
	MeanBatch   float64
	Utilization float64
}

func (p LoadPoint) String() string {
	return fmt.Sprintf("offered %.0f QPS → completed %.0f QPS, p50 %v p99 %v, batch %.1f, util %.0f%%",
		p.OfferedQPS, p.CompletedQPS, p.Mean.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
		p.MeanBatch, p.Utilization*100)
}

// Simulate runs a discrete-event simulation of the batcher in front of one
// device: Poisson arrivals at rate qps for the given duration, batches
// formed under policy (flush at MaxBatch, or MaxDelay after the oldest
// pending arrival), served FIFO one batch at a time with the modeled batch
// latency. Deterministic given rng.
func Simulate(rng *rand.Rand, qps float64, duration time.Duration, policy Policy, lat BatchLatency) (LoadPoint, error) {
	if err := policy.Validate(); err != nil {
		return LoadPoint{}, err
	}
	if qps <= 0 || duration <= 0 {
		return LoadPoint{}, fmt.Errorf("serving: need positive load and duration")
	}
	// Generate arrivals.
	var arrivals []float64 // seconds
	t := 0.0
	horizon := duration.Seconds()
	for {
		t += rng.ExpFloat64() / qps
		if t >= horizon {
			break
		}
		arrivals = append(arrivals, t)
	}
	if len(arrivals) == 0 {
		return LoadPoint{}, fmt.Errorf("serving: no arrivals at %.2f QPS over %v", qps, duration)
	}

	var latencies []float64
	var busy float64
	var batches int
	deviceFree := 0.0
	i := 0
	for i < len(arrivals) {
		// Form the next batch starting from arrival i.
		oldest := arrivals[i]
		flushAt := oldest + policy.MaxDelay.Seconds()
		// The batch closes at the earlier of: the MaxBatch-th arrival, or
		// the deadline — but never before the device is free (requests
		// arriving while the device is busy join the batch).
		end := i
		closeTime := flushAt
		for end+1 < len(arrivals) && end-i+1 < policy.MaxBatch {
			next := arrivals[end+1]
			if next > flushAt && next > deviceFree {
				break
			}
			end++
		}
		if end-i+1 >= policy.MaxBatch {
			closeTime = arrivals[end]
		}
		if closeTime < deviceFree {
			closeTime = deviceFree
		}
		// Late joiners up to the actual service start, bounded by
		// MaxBatch.
		for end+1 < len(arrivals) && end-i+1 < policy.MaxBatch && arrivals[end+1] <= closeTime {
			end++
		}
		size := end - i + 1
		serviceStart := closeTime
		serviceTime := lat(size).Seconds()
		completion := serviceStart + serviceTime
		for j := i; j <= end; j++ {
			latencies = append(latencies, completion-arrivals[j])
		}
		busy += serviceTime
		batches++
		deviceFree = completion
		i = end + 1
	}

	sort.Float64s(latencies)
	pick := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return time.Duration(latencies[idx] * float64(time.Second))
	}
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	span := deviceFree
	if horizon > span {
		span = horizon
	}
	return LoadPoint{
		OfferedQPS:   qps,
		CompletedQPS: float64(len(latencies)) / span,
		Mean:         time.Duration(sum / float64(len(latencies)) * float64(time.Second)),
		P50:          pick(0.50),
		P95:          pick(0.95),
		P99:          pick(0.99),
		MeanBatch:    float64(len(latencies)) / float64(batches),
		Utilization:  busy / span,
	}, nil
}
