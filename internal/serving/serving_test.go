package serving

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// echoHandler answers each key with its length; records batch sizes.
func echoHandler(sizes *[]int, mu *sync.Mutex) Handler {
	return func(batch [][]byte) ([][]uint32, error) {
		mu.Lock()
		*sizes = append(*sizes, len(batch))
		mu.Unlock()
		out := make([][]uint32, len(batch))
		for i, k := range batch {
			out[i] = []uint32{uint32(len(k))}
		}
		return out, nil
	}
}

func TestPolicyValidate(t *testing.T) {
	if (Policy{MaxBatch: 0, MaxDelay: time.Millisecond}).Validate() == nil {
		t.Error("MaxBatch=0 accepted")
	}
	if (Policy{MaxBatch: 1, MaxDelay: 0}).Validate() == nil {
		t.Error("MaxDelay=0 accepted")
	}
	if err := (Policy{MaxBatch: 8, MaxDelay: time.Millisecond}).Validate(); err != nil {
		t.Error(err)
	}
}

// TestBatcherFlushOnMaxBatch: MaxBatch concurrent submissions form one
// batch.
func TestBatcherFlushOnMaxBatch(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	b, err := NewBatcher(Policy{MaxBatch: 4, MaxDelay: time.Hour}, echoHandler(&sizes, &mu))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			ans, err := b.Submit(make([]byte, n+1))
			if err != nil {
				t.Error(err)
				return
			}
			if ans[0] != uint32(n+1) {
				t.Errorf("wrong answer routing: got %d want %d", ans[0], n+1)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 4 {
		t.Fatalf("served %d requests, want 4", total)
	}
	if len(sizes) != 1 {
		t.Errorf("formed %d batches, want 1 (MaxBatch flush)", len(sizes))
	}
}

// TestBatcherFlushOnDeadline: a lone request is served within ~MaxDelay.
func TestBatcherFlushOnDeadline(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	b, err := NewBatcher(Policy{MaxBatch: 1000, MaxDelay: 20 * time.Millisecond}, echoHandler(&sizes, &mu))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	start := time.Now()
	if _, err := b.Submit([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("deadline flush took %v", waited)
	}
}

// TestBatcherErrorPropagation: handler errors reach every caller in the
// batch.
func TestBatcherErrorPropagation(t *testing.T) {
	b, err := NewBatcher(Policy{MaxBatch: 2, MaxDelay: time.Millisecond},
		func(batch [][]byte) ([][]uint32, error) { return nil, fmt.Errorf("boom") })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Submit([]byte{1}); err == nil {
		t.Error("handler error not propagated")
	}
}

// TestBatcherClose: closing rejects new work but completes in-flight work.
func TestBatcherClose(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	b, err := NewBatcher(Policy{MaxBatch: 100, MaxDelay: time.Hour}, echoHandler(&sizes, &mu))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit([]byte{1, 2, 3})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the submit enqueue
	b.Close()
	if err := <-done; err != nil {
		t.Errorf("in-flight request failed: %v", err)
	}
	if _, err := b.Submit([]byte{9}); err == nil {
		t.Error("submit after close accepted")
	}
	b.Close() // idempotent
}

// TestBatcherStress hammers the batcher from many goroutines and verifies
// every caller gets its own answer back.
func TestBatcherStress(t *testing.T) {
	var served atomic.Int64
	b, err := NewBatcher(Policy{MaxBatch: 32, MaxDelay: time.Millisecond},
		func(batch [][]byte) ([][]uint32, error) {
			served.Add(int64(len(batch)))
			out := make([][]uint32, len(batch))
			for i, k := range batch {
				out[i] = []uint32{uint32(k[0])}
			}
			return out, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const workers = 16
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ans, err := b.Submit([]byte{id})
				if err != nil {
					t.Error(err)
					return
				}
				if ans[0] != uint32(id) {
					t.Errorf("cross-wired answer: got %d want %d", ans[0], id)
					return
				}
			}
		}(byte(w))
	}
	wg.Wait()
	if served.Load() != workers*per {
		t.Errorf("served %d, want %d", served.Load(), workers*per)
	}
}

// modelLatency builds a BatchLatency from the V100 model on a 1M table.
func modelLatency(t testing.TB) BatchLatency {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	s := strategy.MemBoundTree{K: 128, Fused: true}
	return func(batch int) time.Duration {
		rep, err := s.Model(dev, prg, 20, batch, 64)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		return rep.Latency
	}
}

// TestSimulateLowLoad: at light load, latency ≈ MaxDelay + single-batch
// service time, and utilization is low.
func TestSimulateLowLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lat := modelLatency(t)
	policy := Policy{MaxBatch: 64, MaxDelay: 50 * time.Millisecond}
	p, err := Simulate(rng, 20, 5*time.Second, policy, lat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Utilization > 0.7 {
		t.Errorf("low load should not saturate: util %.2f", p.Utilization)
	}
	if p.P50 > 150*time.Millisecond {
		t.Errorf("light-load p50 %v too high", p.P50)
	}
}

// TestSimulateSaturation: offered load beyond the device's modeled
// capacity saturates utilization and blows up tail latency.
func TestSimulateSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lat := modelLatency(t)
	policy := Policy{MaxBatch: 128, MaxDelay: 50 * time.Millisecond}
	// The 1M-table AES model sustains ≈1.3k QPS; offer 4x that.
	over, err := Simulate(rng, 5200, 2*time.Second, policy, lat)
	if err != nil {
		t.Fatal(err)
	}
	if over.Utilization < 0.95 {
		t.Errorf("overload should saturate: util %.2f", over.Utilization)
	}
	if over.CompletedQPS > 2600 {
		t.Errorf("completed %.0f QPS exceeds modeled capacity band", over.CompletedQPS)
	}
	under, err := Simulate(rng, 400, 2*time.Second, policy, lat)
	if err != nil {
		t.Fatal(err)
	}
	if under.P99 >= over.P99 {
		t.Errorf("p99 should grow with load: %v vs %v", under.P99, over.P99)
	}
}

// TestSimulateBatchGrowsWithLoad: heavier load forms larger batches — the
// mechanism that keeps throughput high (Figure 9a's operational side).
func TestSimulateBatchGrowsWithLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lat := modelLatency(t)
	policy := Policy{MaxBatch: 128, MaxDelay: 50 * time.Millisecond}
	light, err := Simulate(rng, 50, 3*time.Second, policy, lat)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(rng, 1200, 3*time.Second, policy, lat)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanBatch <= light.MeanBatch {
		t.Errorf("batch size should grow with load: %.1f vs %.1f", light.MeanBatch, heavy.MeanBatch)
	}
	// The adaptive tuner encodes the same mechanism as policy: the batch
	// size it picks for the heavy rate must exceed its pick for the light
	// rate.
	const slo = 200 * time.Millisecond
	tl, th := AutoTune(50, slo, 128, lat), AutoTune(1200, slo, 128, lat)
	if th.MaxBatch <= tl.MaxBatch {
		t.Errorf("AutoTune batch should grow with load: %d (50 qps) vs %d (1200 qps)", tl.MaxBatch, th.MaxBatch)
	}
}

// TestSimulateValidation.
func TestSimulateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lat := func(int) time.Duration { return time.Millisecond }
	if _, err := Simulate(rng, 0, time.Second, Policy{MaxBatch: 1, MaxDelay: time.Millisecond}, lat); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := Simulate(rng, 10, 0, Policy{MaxBatch: 1, MaxDelay: time.Millisecond}, lat); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Simulate(rng, 10, time.Second, Policy{}, lat); err == nil {
		t.Error("bad policy accepted")
	}
}
