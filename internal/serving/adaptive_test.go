package serving

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/strategy"
)

// TestAutoTuneBatchMonotonicInLoad: the tuned batch size never shrinks as
// offered load grows (the adaptive analogue of
// TestSimulateBatchGrowsWithLoad), and every tuned policy is valid with
// its deadline inside the SLO budget.
func TestAutoTuneBatchMonotonicInLoad(t *testing.T) {
	lat := modelLatency(t)
	const slo = 200 * time.Millisecond
	prev := 0
	for _, qps := range []float64{10, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400} {
		p := AutoTune(qps, slo, 128, lat)
		if err := p.Validate(); err != nil {
			t.Fatalf("qps %.0f: invalid tuned policy: %v", qps, err)
		}
		if p.MaxBatch < prev {
			t.Fatalf("qps %.0f: tuned batch %d shrank below %d at lower load", qps, p.MaxBatch, prev)
		}
		if p.MaxDelay > slo/2 {
			t.Fatalf("qps %.0f: tuned delay %v exceeds half the %v SLO", qps, p.MaxDelay, slo)
		}
		prev = p.MaxBatch
	}
	if prev <= 1 {
		t.Fatalf("tuned batch never grew above %d across a 640× load range", prev)
	}
}

// TestAutoTuneDelayCappedByArrivalGap: the tuned deadline must track the
// observed arrival stream, not just the SLO budget — a batch of b at rate
// qps fills in about b/qps, and waiting past two fill times parks sparse
// traffic for a deadline the stream can never fill (the 176ms-p50 failure
// mode behind a small connection pool). Removing the cap makes low-rate,
// generous-SLO points blow straight through this bound to slo/2.
func TestAutoTuneDelayCappedByArrivalGap(t *testing.T) {
	lat := modelLatency(t)
	for _, slo := range []time.Duration{200 * time.Millisecond, 2 * time.Second} {
		for _, qps := range []float64{5, 50, 500, 5000} {
			p := AutoTune(qps, slo, 128, lat)
			if err := p.Validate(); err != nil {
				t.Fatalf("slo %v qps %.0f: invalid tuned policy: %v", slo, qps, err)
			}
			cap := time.Duration(2 * float64(p.MaxBatch) / qps * float64(time.Second))
			if cap < 100*time.Microsecond {
				cap = 100 * time.Microsecond
			}
			if p.MaxDelay > cap {
				t.Errorf("slo %v qps %.0f: tuned delay %v exceeds the %v fill-time cap (batch %d)",
					slo, qps, p.MaxDelay, cap, p.MaxBatch)
			}
		}
	}
}

// TestAutoTuneMeetsSLOWhenFeasible: wherever ANY static MaxBatch choice
// meets the p99 SLO under the Simulate model, the auto-tuned policy meets
// it too — auto-tuning may shed load it cannot carry, but it must never
// lose to a static policy that was available.
func TestAutoTuneMeetsSLOWhenFeasible(t *testing.T) {
	lat := modelLatency(t)
	const slo = 200 * time.Millisecond
	const dur = 2 * time.Second
	statics := []int{1, 2, 4, 8, 16, 32, 64, 128}
	for _, qps := range []float64{50, 200, 400, 800, 1200} {
		feasible := false
		for _, mb := range statics {
			rng := rand.New(rand.NewSource(int64(qps) + int64(mb)))
			p, err := Simulate(rng, qps, dur, Policy{MaxBatch: mb, MaxDelay: 50 * time.Millisecond}, lat)
			if err != nil {
				t.Fatal(err)
			}
			if p.P99 <= slo {
				feasible = true
				break
			}
		}
		if !feasible {
			continue // over the device's capacity — admission control's job
		}
		tuned := AutoTune(qps, slo, 128, lat)
		rng := rand.New(rand.NewSource(int64(qps)))
		p, err := Simulate(rng, qps, dur, tuned, lat)
		if err != nil {
			t.Fatal(err)
		}
		if p.P99 > slo {
			t.Errorf("qps %.0f: tuned policy %+v has p99 %v over the %v SLO a static policy could meet",
				qps, tuned, p.P99, slo)
		}
	}
}

// TestBatcherAdmissionControl: past MaxQueue admitted-but-unfinished
// requests, Submit sheds immediately with ErrOverloaded; once the backlog
// drains, admission resumes; the counters record both outcomes.
func TestBatcherAdmissionControl(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	handler := func(batch [][]byte) ([][]uint32, error) {
		entered <- struct{}{}
		<-release
		out := make([][]uint32, len(batch))
		for i := range out {
			out[i] = []uint32{1}
		}
		return out, nil
	}
	b, err := NewBatcher(Policy{MaxBatch: 1, MaxDelay: time.Hour, MaxQueue: 2}, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	defer b.Close()

	results := make(chan error, 2)
	go func() { _, err := b.Submit([]byte{1}); results <- err }()
	<-entered // first request is in service
	go func() { _, err := b.Submit([]byte{2}); results <- err }()
	waitFor(t, func() bool { a, _ := b.Counts(); return a == 2 })

	// Queue holds 2 (one in service, one pending): the third sheds, fast.
	start := time.Now()
	if _, err := b.Submit([]byte{3}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v; admission must fail fast, not queue", d)
	}

	release <- struct{}{} // finish request 1
	<-entered             // request 2 enters service
	release <- struct{}{} // finish request 2
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}

	// Backlog drained: admission resumes.
	go func() { <-entered; release <- struct{}{} }()
	if _, err := b.Submit([]byte{4}); err != nil {
		t.Fatalf("post-drain submit failed: %v", err)
	}
	accepted, shed := b.Counts()
	if accepted != 3 || shed != 1 {
		t.Fatalf("counts accepted=%d shed=%d, want 3/1", accepted, shed)
	}
	if b.Arrivals() != 4 {
		t.Fatalf("arrivals %d, want 4", b.Arrivals())
	}
}

// TestBatcherSetPolicy: the policy can be swapped at runtime, invalid
// swaps are refused, and Policy reflects the live value.
func TestBatcherSetPolicy(t *testing.T) {
	b, err := NewBatcher(Policy{MaxBatch: 4, MaxDelay: time.Millisecond}, func(batch [][]byte) ([][]uint32, error) {
		return make([][]uint32, len(batch)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	next := Policy{MaxBatch: 16, MaxDelay: 5 * time.Millisecond, MaxQueue: 32}
	if err := b.SetPolicy(next); err != nil {
		t.Fatal(err)
	}
	if got := b.Policy(); got != next {
		t.Fatalf("Policy() = %+v, want %+v", got, next)
	}
	if err := b.SetPolicy(Policy{MaxBatch: 0, MaxDelay: time.Millisecond}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if got := b.Policy(); got != next {
		t.Fatalf("rejected SetPolicy still changed the policy to %+v", got)
	}
}

// TestLatencyFitLearnsCurve: the online fit recovers a known affine
// batch-latency curve from observations and withholds a model until it
// has seen enough.
func TestLatencyFitLearnsCurve(t *testing.T) {
	var fit latencyFit
	curve := func(b int) time.Duration { return time.Millisecond + time.Duration(b)*500*time.Microsecond }
	if fit.model() != nil {
		t.Fatal("fit produced a model with zero observations")
	}
	for round := 0; round < 10; round++ {
		for _, b := range []int{1, 4, 8, 16, 32} {
			fit.observe(b, curve(b))
		}
	}
	m := fit.model()
	if m == nil {
		t.Fatal("fit withheld a model after 50 observations")
	}
	for _, b := range []int{2, 10, 24} {
		got, want := m(b), curve(b)
		if got < want*8/10 || got > want*12/10 {
			t.Fatalf("model(%d) = %v, want within 20%% of %v", b, got, want)
		}
	}
}

// TestFrontAdaptiveRetune: a Front under sustained heavy load re-tunes
// its policy — batch size grows from the initial 1 — and its stats count
// the traffic.
func TestFrontAdaptiveRetune(t *testing.T) {
	const rows, lanes = 512, 4
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewReplica(tab, engine.Config{Party: 0, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An analytic curve makes the tuning deterministic in the measured
	// rate: at the drive rate below, batch 1 is over budget and larger
	// batches are not.
	curve := func(b int) time.Duration { return 500*time.Microsecond + time.Duration(b)*10*time.Microsecond }
	f, err := NewFront(FrontConfig{
		Policy:      Policy{MaxBatch: 1, MaxDelay: time.Millisecond, MaxQueue: 4096},
		SLO:         50 * time.Millisecond,
		MaxBatchCap: 64,
		Latency:     curve,
		Retune:      10 * time.Millisecond,
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	prg := dpf.NewAESPRG()
	keyRng := rand.New(rand.NewSource(7))
	k0, _, err := dpf.Gen(prg, 3, tab.Bits(), []uint32{1}, keyRng)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Answer([][]byte{raw}); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Error(err)
					return
				}
			}
		}()
	}
	waitFor(t, func() bool { return f.Retunes() > 0 && f.Policy().MaxBatch > 1 })
	close(stop)
	for w := 0; w < 4; w++ {
		<-done
	}
	if p := f.Policy(); p.MaxQueue != 4096 {
		t.Fatalf("retune dropped the admission bound: %+v", p)
	}
	if s := f.ServingStats(); s.Accepted == 0 {
		t.Fatalf("front served traffic but stats say %+v", s)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
