package serving

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gpudpf/internal/engine"
)

// autoTuneRhoMax is the device-utilization ceiling AutoTune plans for:
// the chosen batch size must serve the offered rate at no more than this
// busy fraction, leaving headroom so queueing delay stays a small
// multiple of one service time instead of diverging near saturation.
const autoTuneRhoMax = 0.7

// AutoTune picks a batch-formation policy for an offered arrival rate, a
// p99 latency SLO, and a batch-latency model: the smallest MaxBatch whose
// modeled utilization at the offered rate stays under autoTuneRhoMax
// (small batches keep per-request latency low; load forces them up — the
// same effect TestSimulateBatchGrowsWithLoad measures, made into policy),
// and a MaxDelay that spends the SLO budget left after service time,
// capped by the batch's expected fill time at the offered rate (two
// inter-arrival gaps per slot) so sparse traffic is never parked for a
// deadline the stream cannot fill. The
// choice is deterministic and the chosen MaxBatch is nondecreasing in
// qps: the feasibility predicate qps·lat(b) ≤ ρmax·b only tightens as the
// rate grows. When no batch up to maxBatch can carry the rate, the device
// is simply over-committed: AutoTune returns maxBatch (maximum
// throughput) and relies on admission control to shed the excess.
func AutoTune(qps float64, slo time.Duration, maxBatch int, lat BatchLatency) Policy {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if qps < 1 {
		qps = 1
	}
	b := maxBatch
	for cand := 1; cand <= maxBatch; cand++ {
		if qps*lat(cand).Seconds() <= autoTuneRhoMax*float64(cand) {
			b = cand
			break
		}
	}
	// Whatever the SLO has left after two service times (one batch wait
	// behind the device + the batch's own service) may be spent waiting
	// for the batch to fill. The deadline only binds at light load —
	// under backlog, batches fill to MaxBatch while the device is busy —
	// so clamping it into (0, slo/2] costs throughput nothing.
	service := lat(b)
	delay := slo - 2*service
	if delay > slo/2 {
		delay = slo / 2
	}
	if min := slo / 20; delay < min {
		delay = min
	}
	// The SLO budget alone is the wrong cap when the arrival stream cannot
	// fill the batch: a tuned-up MaxBatch behind a small connection pool
	// never reaches MaxBatch, so EVERY batch ate the whole deadline (176ms
	// p50 at 500 QPS where the static 30ms policy was fine). At the
	// observed (EWMA) rate a batch of b fills in about b/qps — waiting much
	// past that buys no extra coalescing — so cap the deadline at two
	// expected fill times: the wait now tracks the measured inter-arrival
	// gap, and at dense arrivals the cap is far below the SLO clamp and
	// never binds.
	if fill := time.Duration(2 * float64(b) / qps * float64(time.Second)); delay > fill {
		delay = fill
	}
	if delay < 100*time.Microsecond {
		delay = 100 * time.Microsecond
	}
	return Policy{MaxBatch: b, MaxDelay: delay}
}

// Stats is the serving front door's observability surface, reported over
// the wire to the load harness (pir's stats op): admission outcomes plus
// the cluster's mixed-epoch re-fan count.
type Stats struct {
	// Accepted counts requests admitted to a batch.
	Accepted uint64
	// Shed counts requests refused with ErrOverloaded at the admission
	// bound.
	Shed uint64
	// EpochRetries counts answer batches the backend re-fanned because
	// their partial shares straddled an update commit (engine.Cluster's
	// ErrMixedEpoch retry path; always 0 for single replicas).
	EpochRetries uint64
}

// StatsSource is implemented by request paths that can report Stats —
// pir.Serve probes its Answerer for it to serve the wire stats op.
type StatsSource interface {
	ServingStats() Stats
}

// FrontConfig assembles a Front.
type FrontConfig struct {
	// Policy is the initial batch policy; its MaxQueue is the admission
	// bound and is preserved across adaptive re-tunes.
	Policy Policy
	// SLO, when positive, enables adaptive tuning: the front re-tunes
	// MaxBatch/MaxDelay against the measured arrival rate so p99 stays
	// inside the SLO where the device can meet it at all. 0 keeps the
	// static policy.
	SLO time.Duration
	// MaxBatchCap bounds the adaptive MaxBatch (0 = the initial policy's
	// MaxBatch).
	MaxBatchCap int
	// Latency is the batch-latency model AutoTune plans with; nil learns
	// the curve from measured batch service times.
	Latency BatchLatency
	// Retune is how often the adaptive loop re-evaluates the policy
	// (0 = 500ms).
	Retune time.Duration
}

// Front is the serving front door cmd/pirserver (and the tests) put in
// front of an engine backend: per-key validation, the batcher with
// admission control, optional adaptive policy tuning against an SLO,
// batch updates, and the stats the wire protocol reports. It is what
// turns "overload" from a collapsing queue into bounded p99 plus named
// shed errors.
type Front struct {
	b         *Batcher
	be        engine.Backend
	validator engine.KeyValidator
	updater   engine.BatchUpdater
	retries   engine.EpochRetryCounter

	cfg     FrontConfig
	retuned atomic.Uint64
	stop    chan struct{}
	done    chan struct{}
}

// NewFront builds the front door over a backend, probing it for the
// optional capabilities (key validation, epoch updates, the mixed-epoch
// retry counter). With cfg.SLO set, a background loop re-tunes the batch
// policy against the measured arrival rate every cfg.Retune.
func NewFront(cfg FrontConfig, be engine.Backend) (*Front, error) {
	if be == nil {
		return nil, errors.New("serving: nil backend")
	}
	b, err := NewEngineBatcher(cfg.Policy, be)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBatchCap <= 0 {
		cfg.MaxBatchCap = cfg.Policy.MaxBatch
	}
	if cfg.Retune <= 0 {
		cfg.Retune = 500 * time.Millisecond
	}
	f := &Front{
		b:    b,
		be:   be,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.validator, _ = engine.AsKeyValidator(be)
	f.updater, _ = engine.AsBatchUpdater(be)
	f.retries, _ = engine.AsEpochRetries(be)
	if cfg.SLO > 0 {
		go f.retune()
	} else {
		close(f.done)
	}
	return f, nil
}

// retune is the adaptive loop: every cfg.Retune it folds the interval's
// arrival count into an EWMA rate and re-tunes the batch policy for it.
func (f *Front) retune() {
	defer close(f.done)
	ticker := time.NewTicker(f.cfg.Retune)
	defer ticker.Stop()
	last := f.b.Arrivals()
	var rate float64
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		now := f.b.Arrivals()
		interval := float64(now-last) / f.cfg.Retune.Seconds()
		last = now
		if rate == 0 {
			rate = interval
		} else {
			rate = 0.7*rate + 0.3*interval
		}
		lat := f.cfg.Latency
		if lat == nil {
			lat = f.b.LatencyModel()
		}
		if rate <= 0 || lat == nil {
			continue // nothing measured yet; keep the current policy
		}
		p := AutoTune(rate, f.cfg.SLO, f.cfg.MaxBatchCap, lat)
		p.MaxQueue = f.cfg.Policy.MaxQueue
		if cur := f.b.Policy(); p.MaxBatch == cur.MaxBatch && p.MaxDelay == cur.MaxDelay {
			continue
		}
		if err := f.b.SetPolicy(p); err == nil {
			f.retuned.Add(1)
		}
	}
}

// Answer feeds a pre-batched request into the shared batching front door:
// each key is validated, then submitted concurrently, so keys from many
// connections coalesce into the same engine batches. A malformed key
// fails only its own request, never the co-batched requests of other
// clients; a full admission queue fails it with ErrOverloaded.
func (f *Front) Answer(keys [][]byte) ([][]uint32, error) {
	if f.validator != nil {
		for i, key := range keys {
			if err := f.validator.ValidateKey(key); err != nil {
				return nil, fmt.Errorf("key %d: %w", i, err)
			}
		}
	}
	return f.b.SubmitAll(keys)
}

// UpdateBatch installs a row batch as one atomic table epoch on the
// backend (a replica's store epoch, or a cluster's epoch handshake).
// Updates are not batched with answers — they are rare, already batched
// by the caller, and must not wait on a formed answer batch.
func (f *Front) UpdateBatch(writes []engine.RowWrite) (uint64, error) {
	if f.updater == nil {
		return 0, errors.New("serving: backend does not support batch updates")
	}
	return f.updater.UpdateBatch(context.Background(), writes)
}

// ServingStats implements StatsSource.
func (f *Front) ServingStats() Stats {
	accepted, shed := f.b.Counts()
	s := Stats{Accepted: accepted, Shed: shed}
	if f.retries != nil {
		s.EpochRetries = f.retries.EpochRetries()
	}
	return s
}

// Policy returns the batcher's current (possibly re-tuned) policy.
func (f *Front) Policy() Policy { return f.b.Policy() }

// Retunes reports how many times the adaptive loop changed the policy.
func (f *Front) Retunes() uint64 { return f.retuned.Load() }

// Close stops the adaptive loop, drains pending batches and stops the
// batcher worker.
func (f *Front) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
	f.b.Close()
}
