package serving

import (
	"context"
	"errors"
	"sync"

	"gpudpf/internal/engine"
)

// NewEngineBatcher builds a Batcher whose formed batches execute on an
// engine backend — the production request path: cmd/pirserver's TCP
// front end, the benchmarks, and the simulator all meet the same
// engine.Backend seam here.
func NewEngineBatcher(policy Policy, be engine.Backend) (*Batcher, error) {
	if be == nil {
		return nil, errors.New("serving: nil backend")
	}
	return NewBatcher(policy, func(batch [][]byte) ([][]uint32, error) {
		return be.Answer(context.Background(), batch)
	})
}

// SubmitAll submits a key batch concurrently and returns the answers in
// key order. It lets a transport that receives pre-batched requests (one
// TCP request may carry many keys) feed the shared batching front door
// without serializing on per-key round trips.
func (b *Batcher) SubmitAll(keys [][]byte) ([][]uint32, error) {
	out := make([][]uint32, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	wg.Add(len(keys))
	for i, key := range keys {
		go func(i int, key []byte) {
			defer wg.Done()
			out[i], errs[i] = b.Submit(key)
		}(i, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
