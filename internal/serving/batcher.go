// Package serving provides the server-side request path that turns the
// paper's batched DPF kernels into a service: a concurrent batcher that
// groups incoming PIR queries into GPU-sized batches under a size/deadline
// policy — with bounded-queue admission control so overload sheds instead
// of collapsing queue latency — and a discrete-event simulator that maps
// offered load to latency percentiles on the modeled device (the systems
// story behind "a single V100 can serve up to 100,000 queries per second",
// §1). AutoTune closes the loop: it picks the batch policy from a measured
// arrival rate, a latency SLO and a batch-latency model, and Front runs
// that tuning continuously against live traffic.
package serving

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Policy controls batch formation and admission.
type Policy struct {
	// MaxBatch flushes a batch when this many requests are pending.
	MaxBatch int
	// MaxDelay flushes a non-empty batch this long after its oldest
	// request arrived, bounding queueing latency at low load.
	MaxDelay time.Duration
	// MaxQueue, when positive, bounds how many admitted requests may be
	// waiting or in service at once; a Submit past the bound fails fast
	// with ErrOverloaded instead of queueing behind a saturated device.
	// 0 disables admission control (every request queues).
	MaxQueue int
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxBatch < 1 {
		return errors.New("serving: MaxBatch must be >= 1")
	}
	if p.MaxDelay <= 0 {
		return errors.New("serving: MaxDelay must be positive")
	}
	if p.MaxQueue < 0 {
		return errors.New("serving: MaxQueue must be >= 0 (0 = unbounded)")
	}
	return nil
}

// ErrOverloaded is the named fast-fail a Submit gets when the batcher's
// admission bound (Policy.MaxQueue) is full. It is the graceful-degradation
// contract: a shed request costs the client one round trip and a retry
// decision, not an unbounded queue wait, and the accepted requests behind
// it keep their latency. pir's wire protocol carries it by code, so a
// remote client sees this same named error, not a timeout.
var ErrOverloaded = errors.New("serving: overloaded, request shed")

// Handler executes one formed batch. Request i's response must be placed
// at index i of the returned slice.
type Handler func(batch [][]byte) ([][]uint32, error)

// Batcher groups submitted requests into batches and executes them on a
// single device worker (the GPU executes one kernel at a time; concurrency
// comes from batching, §3.2.1). Safe for concurrent Submit.
type Batcher struct {
	handler Handler

	mu      sync.Mutex
	policy  Policy
	pending []pendingReq
	// queued counts admitted-but-uncompleted requests (pending, in the
	// work channel, or in service) — what Policy.MaxQueue bounds.
	queued int
	timer  *time.Timer
	closed bool
	// sending tracks batches taken under mu but not yet handed to work,
	// so Close can wait for them before closing the channel.
	sending sync.WaitGroup
	work    chan []pendingReq
	done    chan struct{}

	// arrivals counts every Submit (shed included) — the offered-rate
	// signal the adaptive front door tunes against. accepted and shed
	// split the outcomes for the serving stats.
	arrivals atomic.Uint64
	accepted atomic.Uint64
	shed     atomic.Uint64

	// fit learns the device's batch-latency curve from served batches.
	fit latencyFit
}

type pendingReq struct {
	key []byte
	ch  chan result
}

type result struct {
	answer []uint32
	err    error
}

// NewBatcher starts the batching worker.
func NewBatcher(policy Policy, handler Handler) (*Batcher, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("serving: nil handler")
	}
	b := &Batcher{
		policy:  policy,
		handler: handler,
		work:    make(chan []pendingReq, 16),
		done:    make(chan struct{}),
	}
	go b.worker()
	return b, nil
}

// Policy returns the batcher's current policy (which SetPolicy — and the
// adaptive front door through it — may change at runtime).
func (b *Batcher) Policy() Policy {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy
}

// SetPolicy swaps the batch-formation policy at runtime. The pending
// batch's deadline timer keeps the delay it was armed with; every later
// batch forms under the new policy.
func (b *Batcher) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	b.policy = p
	b.mu.Unlock()
	return nil
}

// Counts reports the admission outcomes so far: accepted requests
// (admitted to a batch, whatever their eventual result) and shed requests
// (refused with ErrOverloaded at the admission bound).
func (b *Batcher) Counts() (accepted, shed uint64) {
	return b.accepted.Load(), b.shed.Load()
}

// Arrivals reports how many requests have been submitted (accepted or
// shed) — the numerator of a measured offered rate.
func (b *Batcher) Arrivals() uint64 { return b.arrivals.Load() }

// Submit enqueues one query and blocks until its batch completes. When the
// admission bound is full it fails immediately with ErrOverloaded.
func (b *Batcher) Submit(key []byte) ([]uint32, error) {
	ch := make(chan result, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("serving: batcher closed")
	}
	b.arrivals.Add(1)
	if q := b.policy.MaxQueue; q > 0 && b.queued >= q {
		b.mu.Unlock()
		b.shed.Add(1)
		return nil, ErrOverloaded
	}
	b.queued++
	b.accepted.Add(1)
	b.pending = append(b.pending, pendingReq{key: key, ch: ch})
	var batch []pendingReq
	switch {
	case len(b.pending) >= b.policy.MaxBatch:
		batch = b.takeLocked()
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(b.policy.MaxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
	b.dispatch(batch)
	r := <-ch
	b.mu.Lock()
	b.queued--
	b.mu.Unlock()
	return r.answer, r.err
}

func (b *Batcher) deadlineFlush() {
	b.mu.Lock()
	var batch []pendingReq
	if !b.closed && len(b.pending) > 0 {
		batch = b.takeLocked()
	}
	b.mu.Unlock()
	b.dispatch(batch)
}

// takeLocked detaches the pending batch and registers the hand-off. Caller
// holds mu; the returned batch must be passed to dispatch after unlocking —
// sending on b.work under the mutex would stall every Submit and the
// deadline timer whenever the worker falls behind.
func (b *Batcher) takeLocked() []pendingReq {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	batch := b.pending
	b.pending = nil
	if len(batch) > 0 {
		b.sending.Add(1)
	}
	return batch
}

// dispatch hands a taken batch to the worker, outside the mutex.
func (b *Batcher) dispatch(batch []pendingReq) {
	if len(batch) == 0 {
		return
	}
	b.work <- batch
	b.sending.Done()
}

func (b *Batcher) worker() {
	defer close(b.done)
	for batch := range b.work {
		keys := make([][]byte, len(batch))
		for i, r := range batch {
			keys[i] = r.key
		}
		start := time.Now()
		answers, err := b.handler(keys)
		if err == nil {
			b.fit.observe(len(batch), time.Since(start))
		}
		if err == nil && len(answers) != len(batch) {
			err = errors.New("serving: handler returned wrong answer count")
		}
		for i, r := range batch {
			if err != nil {
				r.ch <- result{err: err}
				continue
			}
			r.ch <- result{answer: answers[i]}
		}
	}
}

// LatencyModel returns the batch-latency curve learned from served
// batches (an exponentially-weighted affine fit service ≈ a + c·batch),
// or nil until enough batches have been observed. It is what the adaptive
// front door feeds AutoTune when no analytic model was configured.
func (b *Batcher) LatencyModel() BatchLatency { return b.fit.model() }

// Close flushes any pending batch and stops the worker. Submissions after
// Close fail; in-flight submissions complete.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch)
	// Wait for every taken-but-unsent batch (ours and any concurrent
	// deadline/size flush) before closing the channel under the worker.
	b.sending.Wait()
	close(b.work)
	<-b.done
}

// latencyFit is an online, exponentially-decayed least-squares fit of
// batch service time against batch size: service(b) ≈ a + c·b. The decay
// keeps the fit tracking the live table shape and cache state rather than
// averaging over the process's whole history.
type latencyFit struct {
	mu sync.Mutex
	// Decayed sums of weight, x (batch size), y (seconds), x², x·y.
	w, sx, sy, sxx, sxy float64
	n                   int
}

// fitDecay is the per-observation decay; ~0.98 keeps roughly the last few
// hundred batches relevant.
const fitDecay = 0.98

// fitMinObservations is how many batches the fit wants before it trusts
// its curve.
const fitMinObservations = 8

func (f *latencyFit) observe(batch int, d time.Duration) {
	x, y := float64(batch), d.Seconds()
	f.mu.Lock()
	f.w = f.w*fitDecay + 1
	f.sx = f.sx*fitDecay + x
	f.sy = f.sy*fitDecay + y
	f.sxx = f.sxx*fitDecay + x*x
	f.sxy = f.sxy*fitDecay + x*y
	f.n++
	f.mu.Unlock()
}

func (f *latencyFit) model() BatchLatency {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n < fitMinObservations || f.w <= 0 {
		return nil
	}
	// Slope from the decayed covariance; a degenerate spread (all batches
	// the same size) falls back to a constant-latency model.
	var a, c float64
	den := f.w*f.sxx - f.sx*f.sx
	if den > 1e-9 {
		c = (f.w*f.sxy - f.sx*f.sy) / den
		a = (f.sy - c*f.sx) / f.w
	}
	if c < 0 || a < 0 {
		c = 0
		a = f.sy / f.w
	}
	return func(batch int) time.Duration {
		return time.Duration((a + c*float64(batch)) * float64(time.Second))
	}
}
