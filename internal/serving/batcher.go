// Package serving provides the server-side request path that turns the
// paper's batched DPF kernels into a service: a concurrent batcher that
// groups incoming PIR queries into GPU-sized batches under a size/deadline
// policy, and a discrete-event simulator that maps offered load to latency
// percentiles on the modeled device (the systems story behind "a single
// V100 can serve up to 100,000 queries per second", §1).
package serving

import (
	"errors"
	"sync"
	"time"
)

// Policy controls batch formation.
type Policy struct {
	// MaxBatch flushes a batch when this many requests are pending.
	MaxBatch int
	// MaxDelay flushes a non-empty batch this long after its oldest
	// request arrived, bounding queueing latency at low load.
	MaxDelay time.Duration
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxBatch < 1 {
		return errors.New("serving: MaxBatch must be >= 1")
	}
	if p.MaxDelay <= 0 {
		return errors.New("serving: MaxDelay must be positive")
	}
	return nil
}

// Handler executes one formed batch. Request i's response must be placed
// at index i of the returned slice.
type Handler func(batch [][]byte) ([][]uint32, error)

// Batcher groups submitted requests into batches and executes them on a
// single device worker (the GPU executes one kernel at a time; concurrency
// comes from batching, §3.2.1). Safe for concurrent Submit.
type Batcher struct {
	policy  Policy
	handler Handler

	mu      sync.Mutex
	pending []pendingReq
	timer   *time.Timer
	closed  bool
	// sending tracks batches taken under mu but not yet handed to work,
	// so Close can wait for them before closing the channel.
	sending sync.WaitGroup
	work    chan []pendingReq
	done    chan struct{}
}

type pendingReq struct {
	key []byte
	ch  chan result
}

type result struct {
	answer []uint32
	err    error
}

// NewBatcher starts the batching worker.
func NewBatcher(policy Policy, handler Handler) (*Batcher, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("serving: nil handler")
	}
	b := &Batcher{
		policy:  policy,
		handler: handler,
		work:    make(chan []pendingReq, 16),
		done:    make(chan struct{}),
	}
	go b.worker()
	return b, nil
}

// Submit enqueues one query and blocks until its batch completes.
func (b *Batcher) Submit(key []byte) ([]uint32, error) {
	ch := make(chan result, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("serving: batcher closed")
	}
	b.pending = append(b.pending, pendingReq{key: key, ch: ch})
	var batch []pendingReq
	switch {
	case len(b.pending) >= b.policy.MaxBatch:
		batch = b.takeLocked()
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(b.policy.MaxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
	b.dispatch(batch)
	r := <-ch
	return r.answer, r.err
}

func (b *Batcher) deadlineFlush() {
	b.mu.Lock()
	var batch []pendingReq
	if !b.closed && len(b.pending) > 0 {
		batch = b.takeLocked()
	}
	b.mu.Unlock()
	b.dispatch(batch)
}

// takeLocked detaches the pending batch and registers the hand-off. Caller
// holds mu; the returned batch must be passed to dispatch after unlocking —
// sending on b.work under the mutex would stall every Submit and the
// deadline timer whenever the worker falls behind.
func (b *Batcher) takeLocked() []pendingReq {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	batch := b.pending
	b.pending = nil
	if len(batch) > 0 {
		b.sending.Add(1)
	}
	return batch
}

// dispatch hands a taken batch to the worker, outside the mutex.
func (b *Batcher) dispatch(batch []pendingReq) {
	if len(batch) == 0 {
		return
	}
	b.work <- batch
	b.sending.Done()
}

func (b *Batcher) worker() {
	defer close(b.done)
	for batch := range b.work {
		keys := make([][]byte, len(batch))
		for i, r := range batch {
			keys[i] = r.key
		}
		answers, err := b.handler(keys)
		if err == nil && len(answers) != len(batch) {
			err = errors.New("serving: handler returned wrong answer count")
		}
		for i, r := range batch {
			if err != nil {
				r.ch <- result{err: err}
				continue
			}
			r.ch <- result{answer: answers[i]}
		}
	}
}

// Close flushes any pending batch and stops the worker. Submissions after
// Close fail; in-flight submissions complete.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch)
	// Wait for every taken-but-unsent batch (ours and any concurrent
	// deadline/size flush) before closing the channel under the worker.
	b.sending.Wait()
	close(b.work)
	<-b.done
}
