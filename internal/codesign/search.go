package codesign

import (
	"fmt"
	"math/rand/v2"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// Space is the grid the planner sweeps (§4.2 "Co-design Parameter
// Selection").
type Space struct {
	// Cs are co-location widths to try (include 0 for off).
	Cs []int
	// HotFracs are hot-table sizes as fractions of the grouped table
	// (include 0 for off).
	HotFracs []float64
	// QHots and QFulls are the query budgets to try.
	QHots, QFulls []int
}

// DefaultSpace is a compact grid covering the paper's observed good
// regions (Q_hot ≈ 10–20% of table, C ≈ 1–5).
func DefaultSpace() Space {
	return Space{
		Cs:       []int{0, 1, 2, 4},
		HotFracs: []float64{0, 0.1, 0.2},
		QHots:    []int{2, 4, 8},
		QFulls:   []int{1, 2, 4, 8, 16},
	}
}

// Budgets caps candidates the way the paper's experiments do (§5.1:
// <300 KB communication, <300 ms latency unless stated otherwise).
type Budgets struct {
	// CommBytes caps per-inference communication (0 = unlimited).
	CommBytes int64
	// Latency caps the server-side batch latency (0 = unlimited).
	Latency time.Duration
}

// Candidate is one evaluated grid point.
type Candidate struct {
	Params  Params
	Layout  *Layout
	Quality float64
	Cost    Cost
	// QPS/Latency/Batch are the modeled serving numbers on the device.
	QPS     float64
	Latency time.Duration
	Batch   int
}

// Searcher wires the application into the grid search.
type Searcher struct {
	// Items and Dim describe the protected table.
	Items, Dim int
	// Freq and Cooccur are training-split statistics (Cooccur lists must
	// be at least max(Space.Cs) long per item; see data.Cooccur).
	Freq    []int64
	Cooccur [][]uint64
	// Quality evaluates a layout on held-out data (e.g. simulate drops on
	// test traces and run the model). Higher must be better; pass
	// negated perplexity for LM tasks.
	Quality func(l *Layout) (float64, error)
	// Device and PRG drive the throughput model.
	Device *gpu.Device
	PRG    dpf.PRG
	// Rng drives dummy planning during simulation.
	Rng *rand.Rand
}

// Search evaluates the grid and returns every candidate that fits the
// budgets, sorted by descending QPS.
func (s *Searcher) Search(space Space, budgets Budgets) ([]Candidate, error) {
	if s.Quality == nil {
		return nil, fmt.Errorf("codesign: Searcher needs a Quality function")
	}
	var out []Candidate
	for _, c := range space.Cs {
		for _, hf := range space.HotFracs {
			qhots := space.QHots
			if hf == 0 {
				qhots = []int{0}
			}
			for _, qh := range qhots {
				for _, qf := range space.QFulls {
					groups := ceilDiv(s.Items, c+1)
					p := Params{
						C:       c,
						HotRows: int(hf * float64(groups)),
						QHot:    qh,
						QFull:   qf,
					}
					if p.HotRows == 0 {
						p.QHot = 0
					}
					if p.HotRows > 0 && p.QHot == 0 {
						continue
					}
					cand, err := s.evaluate(p, budgets)
					if err != nil {
						continue // infeasible point (OOM, budget)
					}
					out = append(out, cand)
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("codesign: no grid point fits the budgets")
	}
	sortByQPS(out)
	return out, nil
}

func (s *Searcher) evaluate(p Params, budgets Budgets) (Candidate, error) {
	l, err := BuildLayout(s.Items, s.Dim, s.Freq, s.Cooccur, p)
	if err != nil {
		return Candidate{}, err
	}
	cost := l.Cost()
	if budgets.CommBytes > 0 && cost.CommBytes() > budgets.CommBytes {
		return Candidate{}, fmt.Errorf("codesign: comm %d over budget", cost.CommBytes())
	}
	qps, lat, batch, err := l.Throughput(s.Device, s.PRG, budgets.Latency)
	if err != nil {
		return Candidate{}, err
	}
	q, err := s.Quality(l)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{
		Params: p, Layout: l, Quality: q, Cost: cost,
		QPS: qps, Latency: lat, Batch: batch,
	}, nil
}

// BestMeetingQuality returns the highest-QPS candidate whose quality is at
// least the target — how the paper selects "Acc-eco" (target = baseline
// quality) and "Acc-relaxed" (target = baseline − tolerance) points.
func BestMeetingQuality(cands []Candidate, target float64) (Candidate, bool) {
	for _, c := range cands { // already sorted by QPS desc
		if c.Quality >= target {
			return c, true
		}
	}
	return Candidate{}, false
}

// ParetoFront filters candidates to the quality/QPS pareto frontier
// (no other candidate is at least as good on both axes and better on one).
func ParetoFront(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i == j {
				continue
			}
			if o.QPS >= c.QPS && o.Quality >= c.Quality && (o.QPS > c.QPS || o.Quality > c.Quality) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

func sortByQPS(cands []Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].QPS > cands[j-1].QPS; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}
