package codesign

import (
	"math/rand/v2"
	"sort"

	"gpudpf/internal/batchpir"
)

// InferencePlan is the private-retrieval plan for one inference: which
// grouped rows go to which table, and which wanted items are lost to the
// fixed budgets.
type InferencePlan struct {
	// HotOffsets and FullOffsets are the per-bin query offsets (including
	// dummies), one per effective budget slot.
	HotOffsets, FullOffsets []uint64
	// HotServedRows and FullServedRows give, per bin, the grouped row the
	// bin's query retrieves for the client, or -1 for a dummy.
	HotServedRows, FullServedRows []int64
	// Retrieved and Dropped partition the wanted items.
	Retrieved, Dropped []uint64
	// RowItems maps each queried grouped row to the wanted items it
	// satisfies (co-location lets one row satisfy several).
	RowItems map[uint64][]uint64
}

// DropRate is the fraction of wanted items lost.
func (p *InferencePlan) DropRate() float64 {
	total := len(p.Retrieved) + len(p.Dropped)
	if total == 0 {
		return 0
	}
	return float64(len(p.Dropped)) / float64(total)
}

// Plan maps wanted items to grouped rows, routes rows to the hot or full
// table, and packs them into the fixed budgets. Items earlier in wanted win
// bin collisions, so callers should order by importance (e.g. global
// frequency). rng fills dummy offsets.
func (l *Layout) Plan(wanted []uint64, rng *rand.Rand) (*InferencePlan, error) {
	p := &InferencePlan{RowItems: map[uint64][]uint64{}}

	// Dedupe wanted items onto rows, preserving priority order.
	type rowWant struct {
		row   uint64
		items []uint64
		hot   bool
	}
	rowIndex := map[uint64]*rowWant{}
	seenItem := map[uint64]bool{}
	var rows []*rowWant
	for _, it := range wanted {
		if it >= uint64(l.Items) || seenItem[it] {
			continue // out of range, or a duplicate lookup (served once)
		}
		seenItem[it] = true
		row := uint64(l.RowOf[it])
		rw, ok := rowIndex[row]
		if !ok {
			rw = &rowWant{row: row, hot: l.HotOf[row] >= 0}
			rowIndex[row] = rw
			rows = append(rows, rw)
		}
		rw.items = append(rw.items, it)
	}

	var hotWant, fullWant []uint64 // hot-local / grouped row ids, priority order
	for _, rw := range rows {
		if rw.hot {
			hotWant = append(hotWant, uint64(l.HotOf[rw.row]))
		} else {
			fullWant = append(fullWant, rw.row)
		}
	}

	served := func(row uint64) {
		rw := rowIndex[row]
		p.Retrieved = append(p.Retrieved, rw.items...)
		p.RowItems[row] = rw.items
	}
	dropped := func(row uint64) {
		p.Dropped = append(p.Dropped, rowIndex[row].items...)
	}

	if l.Params.HotRows > 0 {
		plan, err := batchpir.BuildPlan(l.HotCfg, hotWant, rng)
		if err != nil {
			return nil, err
		}
		p.HotOffsets = plan.Offsets
		p.HotServedRows = make([]int64, len(plan.Served))
		for b, hotLocal := range plan.Served {
			if hotLocal < 0 {
				p.HotServedRows[b] = -1
				continue
			}
			p.HotServedRows[b] = int64(l.HotRowIDs[hotLocal])
		}
		for _, hotLocal := range plan.Retrieved {
			served(l.HotRowIDs[hotLocal])
		}
		for _, hotLocal := range plan.Dropped {
			dropped(l.HotRowIDs[hotLocal])
		}
	} else if len(hotWant) > 0 {
		panic("codesign: hot rows planned without a hot table") // unreachable by construction
	}

	plan, err := batchpir.BuildPlan(l.FullCfg, fullWant, rng)
	if err != nil {
		return nil, err
	}
	p.FullOffsets = plan.Offsets
	p.FullServedRows = plan.Served
	for _, row := range plan.Retrieved {
		served(row)
	}
	for _, row := range plan.Dropped {
		dropped(row)
	}
	return p, nil
}

// OrderByFrequency sorts wanted items by descending training frequency so
// the most important lookups win bin collisions. Ties keep input order.
func OrderByFrequency(wanted []uint64, freq []int64) []uint64 {
	out := make([]uint64, len(wanted))
	copy(out, wanted)
	sort.SliceStable(out, func(a, b int) bool {
		var fa, fb int64
		if int(out[a]) < len(freq) {
			fa = freq[out[a]]
		}
		if int(out[b]) < len(freq) {
			fb = freq[out[b]]
		}
		return fa > fb
	})
	return out
}

// SimulateDrops plans every trace (cheaply — no cryptography) and returns
// the per-trace dropped-item sets, the input to model-quality evaluation.
func (l *Layout) SimulateDrops(traces [][]uint64, freq []int64, rng *rand.Rand) ([]map[uint64]bool, error) {
	out := make([]map[uint64]bool, len(traces))
	for i, tr := range traces {
		plan, err := l.Plan(OrderByFrequency(tr, freq), rng)
		if err != nil {
			return nil, err
		}
		m := map[uint64]bool{}
		for _, it := range plan.Dropped {
			m[it] = true
		}
		out[i] = m
	}
	return out, nil
}
