package codesign

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestBuildLayoutDeterministic: preprocessing is a pure function of its
// inputs — deployments on the two servers must agree bit for bit.
func TestBuildLayoutDeterministic(t *testing.T) {
	freq, co, _ := fixture(128)
	p := Params{C: 2, HotRows: 16, QHot: 4, QFull: 8}
	a, err := BuildLayout(128, 4, freq, co, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLayout(128, 4, freq, co, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group counts differ")
	}
	for i := range a.RowOf {
		if a.RowOf[i] != b.RowOf[i] || a.SlotOf[i] != b.SlotOf[i] {
			t.Fatalf("item %d mapped differently across builds", i)
		}
	}
	for i := range a.HotRowIDs {
		if a.HotRowIDs[i] != b.HotRowIDs[i] {
			t.Fatal("hot rows differ across builds")
		}
	}
}

// TestQuickLayoutInvariants: for random parameters, every item maps to
// exactly one slot, groups never exceed C+1 members, and the hot mapping
// is a bijection onto HotRowIDs.
func TestQuickLayoutInvariants(t *testing.T) {
	freq, co, _ := fixture(256)
	f := func(cRaw, hotRaw, qhRaw, qfRaw uint8) bool {
		c := int(cRaw % 6)
		groups := (256 + c) / (c + 1)
		hot := int(hotRaw) % (groups + 1)
		qh := 1 + int(qhRaw%8)
		qf := 1 + int(qfRaw%16)
		p := Params{C: c, HotRows: hot, QHot: qh, QFull: qf}
		if hot == 0 {
			p.QHot = 0
		}
		l, err := BuildLayout(256, 2, freq, co, p)
		if err != nil {
			return false
		}
		seen := map[[2]int32]bool{}
		for i := 0; i < 256; i++ {
			row := l.RowOf[i]
			slot := int32(l.SlotOf[i])
			if row < 0 || int(row) >= len(l.Groups) {
				return false
			}
			if len(l.Groups[row]) > c+1 {
				return false
			}
			key := [2]int32{row, slot}
			if seen[key] {
				return false
			}
			seen[key] = true
			if l.Groups[row][slot] != uint64(i) {
				return false
			}
		}
		hotSeen := map[int32]bool{}
		for row, h := range l.HotOf {
			if h < 0 {
				continue
			}
			if hotSeen[h] {
				return false
			}
			hotSeen[h] = true
			if l.HotRowIDs[h] != uint64(row) {
				return false
			}
		}
		return len(hotSeen) == len(l.HotRowIDs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPlanPartition: for random wanted sets, Retrieved and Dropped
// partition the in-range wants exactly (no loss, no duplication).
func TestQuickPlanPartition(t *testing.T) {
	freq, co, _ := fixture(256)
	l, err := BuildLayout(256, 2, freq, co, Params{C: 1, HotRows: 16, QHot: 2, QFull: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 0))
	f := func(raw []uint16) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		want := map[uint64]bool{}
		var in []uint64
		for _, r := range raw {
			idx := uint64(r) % 300 // some out of range
			in = append(in, idx)
			if idx < 256 {
				want[idx] = true
			}
		}
		p, err := l.Plan(in, rng)
		if err != nil {
			return false
		}
		got := map[uint64]int{}
		for _, it := range p.Retrieved {
			got[it]++
		}
		for _, it := range p.Dropped {
			got[it]++
		}
		if len(got) != len(want) {
			return false
		}
		for it, n := range got {
			if n != 1 || !want[it] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
