package codesign

import (
	"fmt"

	"gpudpf/internal/pir"
)

// BuildTables materializes the serving tables for a layout from the
// trained embedding rows (emb[i] is item i's vector, all Dim long): the
// grouped full table, and the hot table (nil when the split is off). This
// is the deploy-time preprocessing step of §4.2.
func (l *Layout) BuildTables(emb [][]float32) (full, hot *pir.Table, err error) {
	if len(emb) != l.Items {
		return nil, nil, fmt.Errorf("codesign: %d embedding rows for %d items", len(emb), l.Items)
	}
	lanes := l.GroupLanes()
	full, err = pir.NewTable(len(l.Groups), lanes)
	if err != nil {
		return nil, nil, err
	}
	for r, group := range l.Groups {
		row := full.Row(r)
		for slot, item := range group {
			if len(emb[item]) != l.Dim {
				return nil, nil, fmt.Errorf("codesign: item %d has %d lanes, want %d", item, len(emb[item]), l.Dim)
			}
			pir.PackFloats(row[slot*l.Dim:(slot+1)*l.Dim], emb[item])
		}
	}
	if l.Params.HotRows > 0 {
		hot, err = pir.NewTable(l.Params.HotRows, lanes)
		if err != nil {
			return nil, nil, err
		}
		for h, row := range l.HotRowIDs {
			copy(hot.Row(h), full.Row(int(row)))
		}
	}
	return full, hot, nil
}

// ExtractItem pulls one item's embedding out of a fetched grouped row.
func (l *Layout) ExtractItem(item uint64, groupedRow []uint32) ([]float32, error) {
	if item >= uint64(l.Items) {
		return nil, fmt.Errorf("codesign: item %d out of range", item)
	}
	if len(groupedRow) != l.GroupLanes() {
		return nil, fmt.Errorf("codesign: grouped row has %d lanes, want %d", len(groupedRow), l.GroupLanes())
	}
	slot := int(l.SlotOf[item])
	out := make([]float32, l.Dim)
	pir.UnpackFloats(out, groupedRow[slot*l.Dim:(slot+1)*l.Dim])
	return out, nil
}
