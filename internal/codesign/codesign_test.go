package codesign

import (
	"math/rand/v2"
	"testing"
	"time"

	"gpudpf/internal/data"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// fixture builds a small table with strong frequency skew and clean
// co-occurrence pairs: even item 2k always co-occurs with 2k+1.
func fixture(items int) (freq []int64, co [][]uint64, traces [][]uint64) {
	freq = make([]int64, items)
	for i := range freq {
		freq[i] = int64(items - i) // index 0 most frequent
	}
	co = make([][]uint64, items)
	for i := 0; i < items-1; i += 2 {
		co[i] = []uint64{uint64(i + 1)}
		co[i+1] = []uint64{uint64(i)}
	}
	rng := rand.New(rand.NewPCG(1, 0))
	for t := 0; t < 200; t++ {
		base := uint64(rng.IntN(items/2)) * 2
		traces = append(traces, []uint64{base, base + 1, uint64(rng.IntN(items))})
	}
	return
}

func TestBuildLayoutIdentity(t *testing.T) {
	freq, co, _ := fixture(32)
	l, err := BuildLayout(32, 4, freq, co, Params{C: 0, HotRows: 0, QFull: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumGroups() != 32 {
		t.Errorf("C=0 should keep %d groups, got %d", 32, l.NumGroups())
	}
	if l.GroupLanes() != 4 {
		t.Errorf("GroupLanes = %d, want 4", l.GroupLanes())
	}
	for i := 0; i < 32; i++ {
		if l.SlotOf[i] != 0 {
			t.Fatal("C=0 slots must be 0")
		}
		if len(l.Groups[l.RowOf[i]]) != 1 || l.Groups[l.RowOf[i]][0] != uint64(i) {
			t.Fatal("C=0 groups must be singletons")
		}
	}
	if l.EffectiveQHot() != 0 || l.EffectiveQFull() != 4 {
		t.Errorf("budgets = %d/%d, want 0/4", l.EffectiveQHot(), l.EffectiveQFull())
	}
}

func TestBuildLayoutColocation(t *testing.T) {
	freq, co, _ := fixture(32)
	l, err := BuildLayout(32, 4, freq, co, Params{C: 1, QFull: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumGroups() != 16 {
		t.Errorf("pairing should halve groups: %d", l.NumGroups())
	}
	// Every item maps to exactly one (row, slot) and decodes back.
	seen := map[[2]int32]bool{}
	for i := 0; i < 32; i++ {
		key := [2]int32{l.RowOf[i], int32(l.SlotOf[i])}
		if seen[key] {
			t.Fatalf("item %d shares a slot", i)
		}
		seen[key] = true
		if l.Groups[l.RowOf[i]][l.SlotOf[i]] != uint64(i) {
			t.Fatalf("item %d: group/slot inversion broken", i)
		}
	}
	// Co-occurring pairs land in the same row.
	for i := 0; i < 32; i += 2 {
		if l.RowOf[i] != l.RowOf[i+1] {
			t.Errorf("pair (%d,%d) not co-located", i, i+1)
		}
	}
}

func TestBuildLayoutHotTable(t *testing.T) {
	freq, co, _ := fixture(32)
	l, err := BuildLayout(32, 4, freq, co, Params{C: 0, HotRows: 8, QHot: 2, QFull: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.HotRowIDs) != 8 {
		t.Fatalf("hot table has %d rows, want 8", len(l.HotRowIDs))
	}
	// Most frequent item (0) must be hot.
	if l.HotOf[l.RowOf[0]] < 0 {
		t.Error("most frequent item not in hot table")
	}
	// Least frequent must not be.
	if l.HotOf[l.RowOf[31]] >= 0 {
		t.Error("least frequent item in hot table")
	}
}

func TestBuildLayoutValidation(t *testing.T) {
	freq, co, _ := fixture(16)
	cases := []Params{
		{C: -1, QFull: 1},
		{C: 0, QFull: 0},
		{C: 0, HotRows: 99, QHot: 1, QFull: 1},
		{C: 0, HotRows: 4, QHot: 0, QFull: 1},
	}
	for _, p := range cases {
		if _, err := BuildLayout(16, 2, freq, co, p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := BuildLayout(16, 2, freq[:4], co, Params{QFull: 1}); err == nil {
		t.Error("short freq accepted")
	}
	if _, err := BuildLayout(0, 2, nil, nil, Params{QFull: 1}); err == nil {
		t.Error("zero items accepted")
	}
}

// TestPlanBudgetInvariant pins the leakage property: the number of offsets
// per table equals the effective budget for every access pattern.
func TestPlanBudgetInvariant(t *testing.T) {
	freq, co, _ := fixture(64)
	l, err := BuildLayout(64, 2, freq, co, Params{C: 1, HotRows: 8, QHot: 2, QFull: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 0))
	patterns := [][]uint64{
		{},
		{0},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		{63, 62, 61},
		{70}, // out of range: ignored, shape unchanged
	}
	for _, wanted := range patterns {
		p, err := l.Plan(wanted, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.HotOffsets) != l.EffectiveQHot() {
			t.Errorf("pattern %v: %d hot offsets, want %d", wanted, len(p.HotOffsets), l.EffectiveQHot())
		}
		if len(p.FullOffsets) != l.EffectiveQFull() {
			t.Errorf("pattern %v: %d full offsets, want %d", wanted, len(p.FullOffsets), l.EffectiveQFull())
		}
	}
}

// TestPlanColocationSavesQueries: a pair stored together is satisfied by
// one row retrieval.
func TestPlanColocationSavesQueries(t *testing.T) {
	freq, co, _ := fixture(64)
	l, err := BuildLayout(64, 2, freq, co, Params{C: 1, QFull: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 0))
	p, err := l.Plan([]uint64{10, 11}, rng) // co-located pair
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Dropped) != 0 || len(p.Retrieved) != 2 {
		t.Errorf("co-located pair should fit one query: retrieved %v dropped %v",
			p.Retrieved, p.Dropped)
	}
	// Without co-location the same pair with QFull=1 must drop one.
	l0, err := BuildLayout(64, 2, freq, co, Params{C: 0, QFull: 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, err := l0.Plan([]uint64{10, 11}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Dropped) != 1 {
		t.Errorf("uncolocated pair at QFull=1 should drop one, dropped %v", p0.Dropped)
	}
}

// TestPlanPriorityOrder: earlier wanted items win collisions.
func TestPlanPriorityOrder(t *testing.T) {
	freq, co, _ := fixture(64)
	l, err := BuildLayout(64, 2, freq, co, Params{QFull: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 0))
	p, err := l.Plan([]uint64{30, 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Retrieved) != 1 || p.Retrieved[0] != 30 {
		t.Errorf("first wanted item should win: %v", p.Retrieved)
	}
	// OrderByFrequency puts the globally hotter item first.
	ordered := OrderByFrequency([]uint64{30, 20}, freq)
	if ordered[0] != 20 {
		t.Errorf("OrderByFrequency = %v, want 20 first", ordered)
	}
}

// TestSimulateDropsAndCost: hot table + co-location reduce both drops and
// cost vs the plain layout on the fixture workload.
func TestSimulateDropsAndCost(t *testing.T) {
	freq, co, traces := fixture(64)
	rng := rand.New(rand.NewPCG(5, 0))
	plain, err := BuildLayout(64, 2, freq, co, Params{QFull: 2})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := BuildLayout(64, 2, freq, co, Params{C: 1, HotRows: 8, QHot: 1, QFull: 1})
	if err != nil {
		t.Fatal(err)
	}
	dropRate := func(l *Layout) float64 {
		drops, err := l.SimulateDrops(traces, freq, rng)
		if err != nil {
			t.Fatal(err)
		}
		total, dropped := 0, 0
		for i, tr := range traces {
			total += len(tr)
			for range drops[i] {
				dropped++
			}
		}
		return float64(dropped) / float64(total)
	}
	plainDrop := dropRate(plain)
	tunedDrop := dropRate(tuned)
	// The tuned layout halves the query budget yet should not drop much
	// more than plain, thanks to co-location + hot table.
	if tunedDrop > plainDrop+0.15 {
		t.Errorf("tuned drop %.3f much worse than plain %.3f", tunedDrop, plainDrop)
	}
	plainCost := plain.Cost()
	tunedCost := tuned.Cost()
	if tunedCost.PRFBlocks >= plainCost.PRFBlocks {
		t.Errorf("tuned PRF %d not below plain %d", tunedCost.PRFBlocks, plainCost.PRFBlocks)
	}
	if plainCost.Queries != 2 || tunedCost.Queries != 2 {
		t.Errorf("queries = %d/%d, want 2/2", plainCost.Queries, tunedCost.Queries)
	}
}

// TestBuildTablesAndExtract: serving tables decode back to the exact
// embeddings through grouped rows and the hot copy.
func TestBuildTablesAndExtract(t *testing.T) {
	freq, co, _ := fixture(16)
	l, err := BuildLayout(16, 3, freq, co, Params{C: 1, HotRows: 4, QHot: 1, QFull: 2})
	if err != nil {
		t.Fatal(err)
	}
	emb := make([][]float32, 16)
	for i := range emb {
		emb[i] = []float32{float32(i), float32(i) * 2, float32(i) * 3}
	}
	full, hot, err := l.BuildTables(emb)
	if err != nil {
		t.Fatal(err)
	}
	if hot == nil || hot.NumRows != 4 {
		t.Fatal("hot table missing")
	}
	for i := uint64(0); i < 16; i++ {
		row := full.Row(int(l.RowOf[i]))
		got, err := l.ExtractItem(i, row)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != emb[i][j] {
				t.Fatalf("item %d lane %d: %g != %g", i, j, got[j], emb[i][j])
			}
		}
	}
	// Hot rows mirror their grouped rows.
	for h, r := range l.HotRowIDs {
		hr := hot.Row(h)
		fr := full.Row(int(r))
		for j := range hr {
			if hr[j] != fr[j] {
				t.Fatal("hot row diverges from full row")
			}
		}
	}
	// Validation.
	if _, _, err := l.BuildTables(emb[:3]); err == nil {
		t.Error("short embedding set accepted")
	}
	if _, err := l.ExtractItem(99, full.Row(0)); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := l.ExtractItem(0, []uint32{1}); err == nil {
		t.Error("short row accepted")
	}
}

// TestSearchFindsCodesignWin: on a skewed workload with a tight comm
// budget, the searcher should return candidates and the best one should
// use at least one co-design feature.
func TestSearchFindsCodesignWin(t *testing.T) {
	freq, co, traces := fixture(256)
	s := &Searcher{
		Items: 256, Dim: 2,
		Freq: freq, Cooccur: co,
		Device: gpu.TeslaV100(),
		PRG:    dpf.NewAESPRG(),
		Rng:    rand.New(rand.NewPCG(6, 0)),
		Quality: func(l *Layout) (float64, error) {
			drops, err := l.SimulateDrops(traces, freq, rand.New(rand.NewPCG(7, 0)))
			if err != nil {
				return 0, err
			}
			kept := 0.0
			total := 0.0
			for i, tr := range traces {
				total += float64(len(tr))
				kept += float64(len(tr) - len(drops[i]))
			}
			return kept / total, nil
		},
	}
	cands, err := s.Search(DefaultSpace(), Budgets{CommBytes: 16 << 10, Latency: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].QPS > cands[i-1].QPS {
			t.Fatal("candidates not sorted by QPS")
		}
	}
	best, ok := BestMeetingQuality(cands, 0.9)
	if !ok {
		t.Fatal("no candidate reaches 90% retrieval")
	}
	if best.Params.C == 0 && best.Params.HotRows == 0 {
		t.Log("note: best candidate uses no co-design features (acceptable but unexpected)")
	}
	front := ParetoFront(cands)
	if len(front) == 0 || len(front) > len(cands) {
		t.Fatal("bad pareto front")
	}
	for _, f := range front {
		for _, c := range cands {
			if c.QPS > f.QPS && c.Quality > f.Quality {
				t.Fatal("pareto front contains dominated point")
			}
		}
	}
}

// TestCooccurIntegration: layouts built from data.Cooccur statistics group
// genuinely co-occurring items.
func TestCooccurIntegration(t *testing.T) {
	_, _, traces := fixture(64)
	freq := data.Freq(traces, 64)
	co := data.Cooccur(traces, 64, 2)
	l, err := BuildLayout(64, 2, freq, co, Params{C: 1, QFull: 2})
	if err != nil {
		t.Fatal(err)
	}
	together := 0
	checked := 0
	for i := 0; i < 62; i += 2 {
		if freq[i] == 0 {
			continue
		}
		checked++
		if l.RowOf[i] == l.RowOf[i+1] {
			together++
		}
	}
	if checked == 0 {
		t.Skip("fixture produced no pairs")
	}
	if frac := float64(together) / float64(checked); frac < 0.7 {
		t.Errorf("only %.2f of true pairs co-located", frac)
	}
}
