package codesign

import (
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// Cost is the per-inference protocol cost of a layout (one client
// inference against both servers).
type Cost struct {
	// PRFBlocks is the server-side PRF work per server per inference.
	PRFBlocks int64
	// UpBytes and DownBytes are total communication (both servers).
	UpBytes, DownBytes int64
	// Queries is the effective total query count.
	Queries int
}

// CommBytes is the total communication per inference.
func (c Cost) CommBytes() int64 { return c.UpBytes + c.DownBytes }

// Cost computes the layout's per-inference cost model.
func (l *Layout) Cost() Cost {
	var c Cost
	lanes := l.GroupLanes()
	addTable := func(cfg interface {
		NumBins() int
		BinBits() int
	}) {
		bins := int64(cfg.NumBins())
		bits := cfg.BinBits()
		// Per-bin PIR cost in the default early-terminated key format the
		// batchpir clients emit: the walk stops early levels up (§3.1), so
		// the per-bin expansion is 2·(domain>>early)-2 blocks and the key
		// is the wire-v2 size.
		early := dpf.DefaultEarly(bits, 1)
		domain := int64(1) << uint(bits)
		c.PRFBlocks += bins * (2*(domain>>uint(early)) - 2)
		c.UpBytes += bins * int64(dpf.MarshaledSizeEarly(bits, 1, early)) * 2
		c.DownBytes += bins * int64(lanes) * 4 * 2
		c.Queries += int(bins)
	}
	if l.Params.HotRows > 0 {
		addTable(l.HotCfg)
	}
	addTable(l.FullCfg)
	return c
}

// Throughput models end-to-end server throughput for this layout on the
// device, tuning the inference batch size under an optional PIR-latency
// budget. Returns the best QPS (inferences/second), its batch latency, and
// the chosen batch.
func (l *Layout) Throughput(dev *gpu.Device, prg dpf.PRG, maxLatency time.Duration) (qps float64, latency time.Duration, batch int, err error) {
	lanes := l.GroupLanes()
	model := func(cfg interface {
		NumBins() int
		BinBits() int
	}, b int) (time.Duration, error) {
		bits := cfg.BinBits()
		strat := strategy.Schedule(bits)
		rep, err := strat.Model(dev, prg, bits, b*cfg.NumBins(), lanes)
		if err != nil {
			return 0, err
		}
		return rep.Latency, nil
	}
	var bestQPS float64
	var bestLat time.Duration
	bestBatch := 0
	for b := 1; b <= 1<<15; b *= 2 {
		lat, merr := model(l.FullCfg, b)
		if merr != nil {
			break
		}
		if l.Params.HotRows > 0 {
			hotLat, herr := model(l.HotCfg, b)
			if herr != nil {
				break
			}
			lat += hotLat
		}
		if maxLatency > 0 && lat > maxLatency {
			break
		}
		if q := float64(b) / lat.Seconds(); q > bestQPS {
			bestQPS, bestLat, bestBatch = q, lat, b
		}
	}
	if bestBatch == 0 {
		return 0, 0, 0, errNoBatch(maxLatency)
	}
	return bestQPS, bestLat, bestBatch, nil
}

type errNoBatch time.Duration

func (e errNoBatch) Error() string {
	return "codesign: no batch size fits latency budget " + time.Duration(e).String()
}
