// Package codesign implements the paper's PIR+ML co-optimizations (§4.2):
//
//   - access-pattern-aware embedding co-location: the top-C companions that
//     co-occur with an embedding are stored in its row, so one PIR query
//     can return several wanted embeddings;
//   - frequency-based hot-table split: the top-K most frequently accessed
//     rows are duplicated into a small hot table that is far cheaper to
//     query privately;
//   - fixed per-inference query budgets Q_hot and Q_full realized as PBR
//     bin counts, so the query count and shape leak nothing about the
//     access pattern (dummies fill unused budget, overflow is dropped);
//   - a grid-search planner that sweeps these parameters and reports the
//     quality/computation/communication pareto frontier (Figures 16–20).
//
// All preprocessing statistics (frequency, co-occurrence) come from the
// training split only; quality is reported on held-out data, matching the
// paper's methodology.
package codesign

import (
	"fmt"

	"gpudpf/internal/batchpir"
	"gpudpf/internal/data"
)

// Params are the co-design knobs the planner sweeps.
type Params struct {
	// C is the number of co-located companions per row (0 disables
	// co-location; paper finds 4–5 good for language, 1–3 for
	// recommendation).
	C int
	// HotRows is the hot table's row count in *grouped* rows (0 disables
	// the split; paper finds 10–20% of the table a good choice).
	HotRows int
	// QHot and QFull are the fixed per-inference query budgets (PBR bin
	// counts). QFull must be ≥ 1; QHot must be ≥ 1 iff HotRows > 0.
	QHot, QFull int
}

// Layout is a preprocessed serving layout for one embedding table.
type Layout struct {
	// Items is the original index space; Dim the embedding width.
	Items, Dim int
	// Params records the knobs that produced this layout.
	Params Params
	// Groups[r] lists the original indices co-located into grouped row r.
	Groups [][]uint64
	// RowOf maps an original index to its grouped row; SlotOf to its slot
	// within the row.
	RowOf  []int32
	SlotOf []int8
	// HotOf maps a grouped row to its hot-table row, or -1.
	HotOf []int32
	// HotRowIDs maps hot-table rows back to grouped rows, most frequent
	// first.
	HotRowIDs []uint64
	// HotCfg and FullCfg are the PBR segmentations (HotCfg is zero when
	// the split is disabled).
	HotCfg, FullCfg batchpir.Config
}

// GroupLanes is the grouped row width in float32 lanes.
func (l *Layout) GroupLanes() int { return l.Dim * (l.Params.C + 1) }

// NumGroups is the grouped (full) table's row count.
func (l *Layout) NumGroups() int { return len(l.Groups) }

// EffectiveQHot and EffectiveQFull are the realized per-inference query
// counts (the PBR bin counts; ceil rounding can land just under the
// requested budget). They depend only on public parameters, never on the
// access pattern.
func (l *Layout) EffectiveQHot() int {
	if l.Params.HotRows == 0 {
		return 0
	}
	return l.HotCfg.NumBins()
}

// EffectiveQFull is the realized full-table query count.
func (l *Layout) EffectiveQFull() int { return l.FullCfg.NumBins() }

// BuildLayout preprocesses a table layout from training statistics: freq
// holds per-index access counts and cooccur per-index companion lists (from
// data.Cooccur; only the first C are used). Both come from the training
// split.
func BuildLayout(items, dim int, freq []int64, cooccur [][]uint64, p Params) (*Layout, error) {
	if items <= 0 || dim <= 0 {
		return nil, fmt.Errorf("codesign: invalid table shape %dx%d", items, dim)
	}
	if len(freq) != items {
		return nil, fmt.Errorf("codesign: freq has %d entries for %d items", len(freq), items)
	}
	if p.C < 0 {
		return nil, fmt.Errorf("codesign: negative C")
	}
	if p.QFull < 1 {
		return nil, fmt.Errorf("codesign: QFull must be >= 1")
	}
	l := &Layout{Items: items, Dim: dim, Params: p}
	l.buildGroups(freq, cooccur)
	if p.HotRows > len(l.Groups) {
		return nil, fmt.Errorf("codesign: HotRows %d exceeds %d groups", p.HotRows, len(l.Groups))
	}
	if p.HotRows > 0 && p.QHot < 1 {
		return nil, fmt.Errorf("codesign: hot table needs QHot >= 1")
	}
	if p.QHot > p.HotRows {
		p.QHot = p.HotRows // more queries than rows is pointless
		l.Params.QHot = p.QHot
	}
	if p.QFull > len(l.Groups) {
		p.QFull = len(l.Groups)
		l.Params.QFull = p.QFull
	}
	l.buildHot(freq)
	l.FullCfg = batchpir.Config{
		NumRows: len(l.Groups),
		BinSize: ceilDiv(len(l.Groups), p.QFull),
	}
	if p.HotRows > 0 {
		l.HotCfg = batchpir.Config{
			NumRows: p.HotRows,
			BinSize: ceilDiv(p.HotRows, p.QHot),
		}
	}
	return l, nil
}

// buildGroups runs the greedy co-location: walk items by frequency, start a
// group at each unassigned item, and pull in its top unassigned companions.
func (l *Layout) buildGroups(freq []int64, cooccur [][]uint64) {
	items := l.Items
	c := l.Params.C
	l.RowOf = make([]int32, items)
	l.SlotOf = make([]int8, items)
	for i := range l.RowOf {
		l.RowOf[i] = -1
	}
	order := data.TopK(freq, items)
	for _, it := range order {
		if l.RowOf[it] >= 0 {
			continue
		}
		group := []uint64{it}
		if c > 0 && int(it) < len(cooccur) {
			for _, comp := range cooccur[it] {
				if len(group) == c+1 {
					break
				}
				if comp < uint64(items) && l.RowOf[comp] < 0 && comp != it {
					group = append(group, comp)
				}
			}
		}
		row := int32(len(l.Groups))
		for slot, member := range group {
			l.RowOf[member] = row
			l.SlotOf[member] = int8(slot)
		}
		l.Groups = append(l.Groups, group)
	}
}

// buildHot picks the top-HotRows grouped rows by aggregate member
// frequency.
func (l *Layout) buildHot(freq []int64) {
	l.HotOf = make([]int32, len(l.Groups))
	for i := range l.HotOf {
		l.HotOf[i] = -1
	}
	if l.Params.HotRows == 0 {
		return
	}
	rowFreq := make([]int64, len(l.Groups))
	for r, group := range l.Groups {
		for _, member := range group {
			rowFreq[r] += freq[member]
		}
	}
	l.HotRowIDs = data.TopK(rowFreq, l.Params.HotRows)
	for hot, row := range l.HotRowIDs {
		l.HotOf[row] = int32(hot)
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
