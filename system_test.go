// Integration tests across the whole stack: data generation → training →
// co-design preprocessing → private serving → on-device inference, plus
// the concurrency and locality properties the paper's deployment story
// rests on.
package gpudpf_test

import (
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"gpudpf/internal/codesign"
	"gpudpf/internal/core"
	"gpudpf/internal/data"
	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/ml"
	"gpudpf/internal/netsim"
	"gpudpf/internal/pir"
	"gpudpf/internal/shardnet"
	"gpudpf/internal/store"
)

// TestFullStackRecommendation trains a tiny recommender, deploys it behind
// the complete private-serving path, and checks that private inference
// with generous budgets produces the same predictions as direct (plaintext)
// inference — the embeddings flowing through DPF-PIR, PBR, co-location and
// the hot table must be bit-exact.
func TestFullStackRecommendation(t *testing.T) {
	cfg := data.RecConfig{
		Name: "it", Items: 512, Genres: 8, Candidates: 50,
		HistoryLen: 8, ZipfS: 1.2, Train: 600, Test: 40,
		SessionLen: 3, Seed: 11,
	}
	ds, err := data.GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const dim = 8
	rng := rand.New(rand.NewSource(12))
	emb := ml.NewEmbedding(cfg.Items, dim, rng)
	mlp := ml.NewMLP(dim+cfg.Genres, 16, rng)
	feats := func(s data.RecSample, pooled ml.Vec) ml.Vec {
		x := make(ml.Vec, dim+cfg.Genres)
		copy(x, pooled)
		x[dim+s.CandGenre] = 1
		return x
	}
	for e := 0; e < 2; e++ {
		for _, s := range ds.Train {
			pooled := make(ml.Vec, dim)
			emb.Bag(pooled, s.History, nil)
			_, dx := mlp.TrainStep(feats(s, pooled), s.Label, 0.05)
			emb.BagGrad(dx[:dim], s.History, nil, 0.3)
		}
	}

	traces := ds.Traces(true)
	freq := data.Freq(traces, cfg.Items)
	cooc := data.Cooccur(traces, cfg.Items, 2)
	layout, err := codesign.BuildLayout(cfg.Items, dim, freq, cooc, codesign.Params{
		C: 2, HotRows: 32, QHot: 8, QFull: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Config{
		Layout: layout, Freq: freq, Link: netsim.LAN(), Seed: 13,
	}, emb.Export())
	if err != nil {
		t.Fatal(err)
	}

	exported := emb.Export()
	totalWanted, totalDropped := 0, 0
	for _, s := range ds.Test {
		rows, tr, err := svc.FetchEmbeddings(s.History)
		if err != nil {
			t.Fatal(err)
		}
		totalWanted += tr.Wanted
		totalDropped += tr.Dropped
		// Every retrieved embedding must be bit-exact, and the private
		// pooled feature must equal direct float32 pooling over the same
		// retrieved subset (PBR can drop on bin collisions even with
		// generous budgets; drops are a quality matter, never a
		// correctness one).
		for idx, got := range rows {
			for j := range got {
				if got[j] != exported[idx][j] {
					t.Fatalf("item %d lane %d: private %g != table %g", idx, j, got[j], exported[idx][j])
				}
			}
		}
		private := make(ml.Vec, dim)
		ml.BagFrom(private, rows, s.History)
		direct := map[uint64][]float32{}
		for idx := range rows {
			direct[idx] = exported[idx]
		}
		want := make(ml.Vec, dim)
		ml.BagFrom(want, direct, s.History)
		for j := range want {
			if private[j] != want[j] {
				t.Fatalf("pooled lane %d: private %g != direct %g", j, private[j], want[j])
			}
		}
		if p := mlp.Predict(feats(s, private)); p < 0 || p > 1 {
			t.Fatalf("prediction %g out of range", p)
		}
	}
	if rate := float64(totalDropped) / float64(totalWanted); rate > 0.3 {
		t.Errorf("drop rate %.2f too high for these budgets", rate)
	}
}

// TestTemporalLocalityCacheClaim reproduces §2.3's observation: with
// session locality and a client cache, only a small fraction of lookups
// reaches the servers' budgets (the paper measures 2.44% new features on
// its production trace; our synthetic sessions refresh one slot per step).
func TestTemporalLocalityCacheClaim(t *testing.T) {
	cfg := data.RecConfig{
		Name: "loc", Items: 2048, Genres: 8, Candidates: 50,
		HistoryLen: 20, ZipfS: 1.2, Train: 400, Test: 40,
		SessionLen: 10, Seed: 14,
	}
	ds, err := data.GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freq := data.Freq(ds.Traces(true), cfg.Items)
	layout, err := codesign.BuildLayout(cfg.Items, 4, freq, nil, codesign.Params{QFull: 32})
	if err != nil {
		t.Fatal(err)
	}
	emb := make([][]float32, cfg.Items)
	for i := range emb {
		emb[i] = []float32{1, 2, 3, 4}
	}
	svc, err := core.New(core.Config{
		Layout: layout, Freq: freq, CacheEntries: 4096, Link: netsim.LAN(), Seed: 15,
	}, emb)
	if err != nil {
		t.Fatal(err)
	}
	wanted, hits := 0, 0
	for _, s := range ds.Train[:200] {
		_, tr, err := svc.FetchEmbeddings(s.History)
		if err != nil {
			t.Fatal(err)
		}
		wanted += tr.Wanted
		hits += tr.CacheHits
	}
	missRate := 1 - float64(hits)/float64(wanted)
	// Sessions of 10 inferences replacing one of 20 slots per step: the
	// steady-state new-feature rate is well under 30%.
	if missRate > 0.30 {
		t.Errorf("cache miss rate %.2f; session locality should make most lookups local", missRate)
	}
	t.Logf("new-feature rate with cache: %.1f%% (paper's production trace: 2.44%%)", missRate*100)
}

// TestDistributedRecommendationTCP runs the recommendation flow's private
// embedding retrieval over real TCP endpoints, twice: against the classic
// two-server pair, and against two 4-shard distributed replicas (each a
// mix of in-process shards and TCP shard nodes holding only their own
// rows). Both paths use the default early-terminated wire-v2 keys and
// must reconstruct the trained embeddings bit-exactly — the property the
// whole two-cloud deployment story rests on.
func TestDistributedRecommendationTCP(t *testing.T) {
	cfg := data.RecConfig{
		Name: "net", Items: 256, Genres: 4, Candidates: 20,
		HistoryLen: 6, ZipfS: 1.2, Train: 200, Test: 8,
		SessionLen: 3, Seed: 51,
	}
	ds, err := data.GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const dim = 8
	rng := rand.New(rand.NewSource(52))
	emb := ml.NewEmbedding(cfg.Items, dim, rng)
	mlp := ml.NewMLP(dim+cfg.Genres, 8, rng)
	feats := func(s data.RecSample, pooled ml.Vec) ml.Vec {
		x := make(ml.Vec, dim+cfg.Genres)
		copy(x, pooled)
		x[dim+s.CandGenre] = 1
		return x
	}
	for _, s := range ds.Train {
		pooled := make(ml.Vec, dim)
		emb.Bag(pooled, s.History, nil)
		_, dx := mlp.TrainStep(feats(s, pooled), s.Label, 0.05)
		emb.BagGrad(dx[:dim], s.History, nil, 0.3)
	}
	exported := emb.Export()

	// Pack the trained embedding table into a PIR table.
	tab, err := pir.NewTable(cfg.Items, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Items; i++ {
		pir.PackFloats(tab.Row(i), exported[uint64(i)])
	}

	cl, err := pir.NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(53)))
	if err != nil {
		t.Fatal(err)
	}
	// The deployment default must be early-terminated wire-v2 keys.
	if cl.Early() == 0 {
		t.Fatal("client defaulted to full-depth keys")
	}
	k0, _, err := cl.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := dpf.WireVersion(k0); v != 2 {
		t.Fatalf("client emits wire v%d keys, want v2", v)
	}

	// Path 1: the classic two-server pair over TCP.
	var tcpEndpoints [2]pir.Endpoint
	for p := 0; p < 2; p++ {
		srv, err := pir.NewServer(p, tab)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go pir.Serve(l, srv)
		e, err := pir.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		tcpEndpoints[p] = e
	}

	// Path 2: per party, a 4-shard distributed replica — shards 0 and 2
	// in-process, shards 1 and 3 real shardnet nodes over TCP holding only
	// their own rows.
	const shards = 4
	bounds := make([]int, shards+1)
	for i := 0; i < shards; i++ {
		bounds[i], bounds[i+1] = engine.ShardRange(tab.NumRows, i, shards)
	}
	var clusterEndpoints [2]pir.Endpoint
	for p := 0; p < 2; p++ {
		members := make([]engine.ClusterShard, shards)
		for i := 0; i < shards; i++ {
			if i%2 == 0 {
				rep, err := pir.NewReplica(p, tab)
				if err != nil {
					t.Fatal(err)
				}
				members[i] = engine.ClusterShard{Backend: rep}
				continue
			}
			nodeTab, err := pir.NewTable(tab.NumRows, tab.Lanes)
			if err != nil {
				t.Fatal(err)
			}
			copy(nodeTab.Data[bounds[i]*tab.Lanes:bounds[i+1]*tab.Lanes],
				tab.Data[bounds[i]*tab.Lanes:bounds[i+1]*tab.Lanes])
			rep, err := pir.NewReplica(p, nodeTab)
			if err != nil {
				t.Fatal(err)
			}
			node, err := shardnet.NewServer(rep, shardnet.ServerConfig{RowLo: bounds[i], RowHi: bounds[i+1]})
			if err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go node.Serve(l)
			defer node.Close()
			sc, err := shardnet.Dial(l.Addr().String(), shardnet.Options{PRG: "aes128", Party: p})
			if err != nil {
				t.Fatal(err)
			}
			members[i] = engine.ClusterShard{Backend: sc, Name: l.Addr().String()}
		}
		cluster, err := engine.NewCluster(members...)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		clusterEndpoints[p] = pir.BackendEndpoint{Backend: cluster}
	}

	paths := []struct {
		name string
		ts   *pir.TwoServer
	}{
		{"two-server-tcp", &pir.TwoServer{Client: cl, E0: tcpEndpoints[0], E1: tcpEndpoints[1]}},
		{"cluster", &pir.TwoServer{Client: cl, E0: clusterEndpoints[0], E1: clusterEndpoints[1]}},
	}
	for _, s := range ds.Test {
		indices := make([]uint64, 0, len(s.History))
		seen := map[uint64]bool{}
		for _, idx := range s.History {
			if !seen[idx] {
				seen[idx] = true
				indices = append(indices, idx)
			}
		}
		var pooled [2]ml.Vec
		for pi, path := range paths {
			rows, _, err := path.ts.Fetch(indices)
			if err != nil {
				t.Fatalf("%s: %v", path.name, err)
			}
			fetched := map[uint64][]float32{}
			for q, idx := range indices {
				floats := make([]float32, dim)
				pir.UnpackFloats(floats, rows[q])
				for j, got := range floats {
					if got != exported[idx][j] {
						t.Fatalf("%s: item %d lane %d: private %g != table %g", path.name, idx, j, got, exported[idx][j])
					}
				}
				fetched[idx] = floats
			}
			pooled[pi] = make(ml.Vec, dim)
			ml.BagFrom(pooled[pi], fetched, s.History)
			if p := mlp.Predict(feats(s, pooled[pi])); p < 0 || p > 1 {
				t.Fatalf("%s: prediction %g out of range", path.name, p)
			}
		}
		// The two serving paths must agree bit-for-bit with each other.
		for j := range pooled[0] {
			if pooled[0][j] != pooled[1][j] {
				t.Fatalf("pooled lane %d: two-server %g != cluster %g", j, pooled[0][j], pooled[1][j])
			}
		}
	}
}

// TestPagedShardNodesTCP: a cluster whose shard nodes serve their row
// slices out-of-core — each node paging a table file through a cache a
// quarter of its slice — answers bit-identically, over real TCP, to a
// cluster of in-RAM nodes and to the table itself. This is the
// cmd/pirserver "-shardnode -table-file" deployment shape: a table no
// single machine could hold, split across paged nodes.
func TestPagedShardNodesTCP(t *testing.T) {
	const rows, lanes, shards = 1024, 8, 2
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}

	// startNode serves rep's rows [lo, hi) over shardnet TCP and returns a
	// dialed client for it.
	startNode := func(rep *engine.Replica, p, lo, hi int) *shardnet.Client {
		node, err := shardnet.NewServer(rep, shardnet.ServerConfig{RowLo: lo, RowHi: hi})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go node.Serve(l)
		t.Cleanup(func() { node.Close() })
		sc, err := shardnet.Dial(l.Addr().String(), shardnet.Options{PRG: "aes128", Party: p})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	// Per party, one cluster of in-RAM nodes and one of paged nodes.
	var ramEp, pagedEp [2]pir.Endpoint
	for p := 0; p < 2; p++ {
		var ramShards, pagedShards []engine.ClusterShard
		for i := 0; i < shards; i++ {
			lo, hi := engine.ShardRange(rows, i, shards)

			nodeTab, err := pir.NewTable(rows, lanes)
			if err != nil {
				t.Fatal(err)
			}
			copy(nodeTab.Data[lo*lanes:hi*lanes], tab.Data[lo*lanes:hi*lanes])
			ramRep, err := pir.NewReplica(p, nodeTab)
			if err != nil {
				t.Fatal(err)
			}
			ramShards = append(ramShards, engine.ClusterShard{Backend: startNode(ramRep, p, lo, hi)})

			// The paged node streams only its slice to disk (rows outside
			// stay zero, as pirserver's openPagedStore writes them) and
			// serves it through a cache a quarter of the slice's bytes, so
			// the sweep really evicts and reloads.
			path := filepath.Join(t.TempDir(), "shard.gpdf")
			err = store.WriteTableFileRows(path, rows, lanes, func(r int, dst []uint32) {
				if r < lo || r >= hi {
					clear(dst)
					return
				}
				copy(dst, tab.Row(r))
			})
			if err != nil {
				t.Fatal(err)
			}
			pb, err := store.OpenPaged(path, store.PagedConfig{
				PageBytes:  1 << 10,
				CacheBytes: int64((hi-lo)*lanes) * 4 / 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { pb.Close() })
			st, err := store.NewPaged(pb)
			if err != nil {
				t.Fatal(err)
			}
			pagedRep, err := pir.NewReplicaOverStore(p, st)
			if err != nil {
				t.Fatal(err)
			}
			pagedShards = append(pagedShards, engine.ClusterShard{Backend: startNode(pagedRep, p, lo, hi)})
		}
		ramCluster, err := engine.NewCluster(ramShards...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ramCluster.Close() })
		pagedCluster, err := engine.NewCluster(pagedShards...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pagedCluster.Close() })
		ramEp[p] = pir.BackendEndpoint{Backend: ramCluster}
		pagedEp[p] = pir.BackendEndpoint{Backend: pagedCluster}
	}

	cl, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	ram := &pir.TwoServer{Client: cl, E0: ramEp[0], E1: ramEp[1]}
	paged := &pir.TwoServer{Client: cl, E0: pagedEp[0], E1: pagedEp[1]}
	indices := []uint64{0, 7, 511, 512, 513, 1023}
	ramRows, _, err := ram.Fetch(indices)
	if err != nil {
		t.Fatal(err)
	}
	pagedRows, _, err := paged.Fetch(indices)
	if err != nil {
		t.Fatal(err)
	}
	for q, idx := range indices {
		want := tab.Row(int(idx))
		for l := range want {
			if ramRows[q][l] != want[l] {
				t.Fatalf("in-RAM cluster row %d lane %d: %d, want %d", idx, l, ramRows[q][l], want[l])
			}
			if pagedRows[q][l] != want[l] {
				t.Fatalf("paged cluster row %d lane %d: %d, want %d (in-RAM agrees with the table)", idx, l, pagedRows[q][l], want[l])
			}
		}
	}
}

// TestConcurrentTCPClients runs several clients against one TCP server
// pair simultaneously; every client must get its own rows.
func TestConcurrentTCPClients(t *testing.T) {
	tab, err := pir.NewTable(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	s0, err := pir.NewServer(0, tab)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := pir.NewServer(1, tab)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l0.Close()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	go pir.Serve(l0, s0)
	go pir.Serve(l1, s1)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e0, err := pir.Dial(l0.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer e0.Close()
			e1, err := pir.Dial(l1.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer e1.Close()
			cl, err := pir.NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(int64(100+id))))
			if err != nil {
				t.Error(err)
				return
			}
			ts := &pir.TwoServer{Client: cl, E0: e0, E1: e1}
			for round := 0; round < 5; round++ {
				idx := uint64((id*37 + round*101) % tab.NumRows)
				rows, _, err := ts.Fetch([]uint64{idx})
				if err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
				want := tab.Row(int(idx))
				for l := range want {
					if rows[0][l] != want[l] {
						t.Errorf("client %d: row %d mismatch", id, idx)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
