// Serving-layer load tests over real TCP: overload sheds with a named
// error while accepted-request p99 stays bounded, SIGTERM drains cleanly
// under active load, and the epoch-retry counter the load harness reports
// matches the cluster's own ErrMixedEpoch re-fan count. These are the
// operational properties behind the open-loop harness (cmd/pirload): the
// same loadgen library drives them here against in-process servers so CI
// measures them deterministically.
package gpudpf_test

import (
	"context"
	"math/rand"
	"net"
	"os/exec"
	"regexp"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gpudpf/internal/engine"
	"gpudpf/internal/loadgen"
	"gpudpf/internal/pir"
	"gpudpf/internal/serving"
)

// loadTable builds a filled rows×lanes table.
func loadTable(t *testing.T, rows, lanes int, seed int64) *pir.Table {
	t.Helper()
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// serveFront puts a serving.Front over the backend behind a real TCP
// listener speaking the client protocol, and dials a pool of conns
// against it.
func serveFront(t *testing.T, be engine.Backend, cfg serving.FrontConfig, conns int) (*serving.Front, []*pir.Remote) {
	t.Helper()
	f, err := serving.NewFront(cfg, be)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go pir.Serve(l, f)
	t.Cleanup(func() { l.Close(); f.Close() })
	remotes := make([]*pir.Remote, conns)
	for i := range remotes {
		r, err := pir.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		remotes[i] = r
	}
	return f, remotes
}

func asTargets(remotes []*pir.Remote) []loadgen.Target {
	targets := make([]loadgen.Target, len(remotes))
	for i, r := range remotes {
		targets[i] = r
	}
	return targets
}

// slowBackend gives the device a known capacity: every batch costs an
// extra fixed delay, so MaxBatch/delay bounds sustainable QPS exactly and
// the test can drive a precise 2× overload.
type slowBackend struct {
	*engine.Replica
	delay time.Duration
}

func (s *slowBackend) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	time.Sleep(s.delay)
	return s.Replica.Answer(ctx, keys)
}

// TestOverloadShedBoundedP99TCP drives 2× a known saturation rate over
// real TCP and asserts graceful degradation: the excess is refused with
// the NAMED overload error (serving.ErrOverloaded round-trips the wire as
// a code, so loadgen classifies sheds via errors.Is — a timeout or a
// string-matched fault would land in Errors and fail the test), while
// accepted requests keep a bounded p99. The server's own admission
// counters must agree exactly with what the client observed.
func TestOverloadShedBoundedP99TCP(t *testing.T) {
	const rows, lanes = 512, 4
	rep, err := pir.NewReplica(0, loadTable(t, rows, lanes, 21))
	if err != nil {
		t.Fatal(err)
	}
	// Capacity: batches of ≤8 keys, ≥10ms each → ≤800 QPS sustained. The
	// geometry matters: MaxQueue must exceed MaxBatch or the queue is
	// pinned full for a whole batch service time and the device starves,
	// and the conn pool must be wide enough that accepted requests (which
	// hold a conn for their full queue+service time) don't throttle the
	// open-loop drive below the admission bound — otherwise the client
	// pool, not the server, is what's measured.
	slow := &slowBackend{Replica: rep, delay: 10 * time.Millisecond}
	_, remotes := serveFront(t, slow, serving.FrontConfig{
		Policy: serving.Policy{MaxBatch: 8, MaxDelay: time.Millisecond, MaxQueue: 16},
	}, 64)

	cl, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := cl.Query(3)
	if err != nil {
		t.Fatal(err)
	}

	cfg := loadgen.Config{
		Seed: 23, Clients: 10_000, Rows: rows, ZipfS: 1.2,
		QPS: 1600, Duration: 2 * time.Second,
	}
	ops, err := loadgen.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := loadgen.Run(loadgen.RunConfig{
		Targets:  asTargets(remotes),
		Schedule: ops,
		KeyFor:   func(uint64) []byte { return key },
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep2.Counts.Errors > 0 {
		t.Fatalf("%d requests failed with non-shed errors — sheds must be the named overload error, nothing else may fail", rep2.Counts.Errors)
	}
	if rep2.Counts.Shed == 0 {
		t.Fatal("2× saturation shed nothing; admission control is not engaging")
	}
	if rep2.Counts.OK == 0 {
		t.Fatal("overload starved every request; shedding must protect accepted traffic, not replace it")
	}
	// The bound distinguishes shedding from collapse: with admission
	// control, accepted requests wait a few batch cycles plus client-pool
	// residence (~100-230ms observed); without it, queueing at 2× load is
	// unbounded and p99 heads for the full 2s run length. 400ms splits
	// those regimes with slack for a loaded CI machine.
	if rep2.Latency.P99 > 400 {
		t.Fatalf("accepted-request p99 %.1fms not bounded under overload", rep2.Latency.P99)
	}
	stats, err := remotes[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed != rep2.Counts.Shed {
		t.Fatalf("server counted %d sheds, harness observed %d", stats.Shed, rep2.Counts.Shed)
	}
	if stats.Accepted != rep2.Counts.OK {
		t.Fatalf("server counted %d accepted, harness completed %d", stats.Accepted, rep2.Counts.OK)
	}
	t.Logf("2× overload: ok=%d shed=%d p50=%.1fms p99=%.1fms achieved=%.0f/%.0f qps",
		rep2.Counts.OK, rep2.Counts.Shed, rep2.Latency.P50, rep2.Latency.P99,
		rep2.AchievedQPS, rep2.OfferedQPS)
}

// TestAdaptiveFrontP50WithinStaticTCP: at moderate, non-saturating load
// the adaptive front's accepted-request p50 must stay within 2× the
// static policy's p50 (plus CI-noise slack). This is the guard on the
// arrival-gap MaxDelay cap: an adaptive front whose tuned deadline spends
// the whole SLO budget parks lightly-loaded batches for the full deadline
// (the 176ms-p50 regression at 500 QPS under a small conn pool), while a
// capped deadline tracks the batch's actual fill time and keeps p50 in
// the static policy's neighborhood. Both fronts are driven over real TCP
// with the same open-loop schedule against the same device capacity.
func TestAdaptiveFrontP50WithinStaticTCP(t *testing.T) {
	const rows, lanes = 512, 4
	cl, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := cl.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	static := serving.Policy{MaxBatch: 16, MaxDelay: 2 * time.Millisecond, MaxQueue: 256}
	drive := func(cfg serving.FrontConfig) (*serving.Front, loadgen.Report) {
		rep, err := pir.NewReplica(0, loadTable(t, rows, lanes, 61))
		if err != nil {
			t.Fatal(err)
		}
		// Geometry: 3ms per batch at 200 QPS keeps the static front (which
		// forms ~1-key batches inside its 2ms deadline) around 60% busy —
		// moderate load, NOT saturation, so p50 measures batch-formation
		// waiting rather than a diverging queue, even on a single-core CI
		// shard where client, server, and harness share the clock.
		slow := &slowBackend{Replica: rep, delay: 3 * time.Millisecond}
		front, remotes := serveFront(t, slow, cfg, 32)
		ops, err := loadgen.Schedule(loadgen.Config{
			Seed: 63, Clients: 1_000, Rows: rows, ZipfS: 1.2,
			QPS: 200, Duration: 2500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := loadgen.Run(loadgen.RunConfig{
			Targets:  asTargets(remotes),
			Schedule: ops,
			KeyFor:   func(uint64) []byte { return key },
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Counts.Errors > 0 || r.Counts.Shed > 0 {
			t.Fatalf("non-saturating load errored/shed (%d/%d); the comparison needs clean accepted traffic",
				r.Counts.Errors, r.Counts.Shed)
		}
		return front, r
	}

	_, stRep := drive(serving.FrontConfig{Policy: static})
	adFront, adRep := drive(serving.FrontConfig{
		Policy:      static,
		SLO:         200 * time.Millisecond,
		MaxBatchCap: 64,
		Retune:      100 * time.Millisecond,
	})
	if adFront.Retunes() == 0 {
		t.Fatal("adaptive front never retuned; the run did not exercise the adaptive path")
	}
	// 2× plus 5ms absolute slack: the static p50 is single-digit ms, and
	// timer granularity on a loaded CI shard is a real fraction of that.
	if limit := 2*stRep.Latency.P50 + 5.0; adRep.Latency.P50 > limit {
		t.Fatalf("adaptive p50 %.1fms exceeds %.1fms (2× static p50 %.1fms + slack); tuned policy %+v parks batches past their fill time",
			adRep.Latency.P50, limit, stRep.Latency.P50, adFront.Policy())
	}
	t.Logf("moderate load: static p50=%.1fms adaptive p50=%.1fms (policy %+v, %d retunes)",
		stRep.Latency.P50, adRep.Latency.P50, adFront.Policy(), adFront.Retunes())
}

// TestShutdownDrainUnderLoadTCP extends the graceful-shutdown path with a
// load-bearing check: a real pirserver process under active traffic gets
// SIGTERM, must drain its in-flight batches, log "shutdown complete", and
// exit 0 — not hang, not crash, not leave the drain half done.
func TestShutdownDrainUnderLoadTCP(t *testing.T) {
	bin := t.TempDir() + "/pirserver"
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pirserver").CombinedOutput(); err != nil {
		t.Fatalf("building pirserver: %v\n%s", err, out)
	}
	const rows = 4096
	srv := exec.Command(bin, "-party", "0", "-addr", "127.0.0.1:0",
		"-rows", "4096", "-lanes", "8", "-batch", "16", "-maxqueue", "256")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The server picks its port; read it off the startup log line.
	addrCh := make(chan string, 1)
	var logMu sync.Mutex
	var logText []byte
	go func() {
		buf := make([]byte, 4096)
		addrRe := regexp.MustCompile(`serving .* on (127\.0\.0\.1:\d+)`)
		sent := false
		for {
			n, err := stderr.Read(buf)
			if n > 0 {
				logMu.Lock()
				logText = append(logText, buf[:n]...)
				if !sent {
					if m := addrRe.FindSubmatch(logText); m != nil {
						sent = true
						addrCh <- string(m[1])
					}
				}
				logMu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(15 * time.Second):
		t.Fatal("pirserver did not log its listen address")
	}

	cl, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := cl.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	// Active load: closed-loop senders that run until the shutdown cuts
	// their connections.
	var served atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		r, err := pir.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		wg.Add(1)
		go func(r *pir.Remote) {
			defer wg.Done()
			for {
				if _, err := r.Answer([][]byte{key}); err != nil {
					return // connection cut by shutdown
				}
				served.Add(1)
			}
		}(r)
	}
	// Let traffic flow, then terminate mid-load.
	deadline := time.Now().Add(5 * time.Second)
	for served.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served before SIGTERM; the test would not exercise an active drain")
	}
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("pirserver exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("pirserver did not exit within 20s of SIGTERM — drain hung")
	}
	wg.Wait()
	logMu.Lock()
	logs := string(logText)
	logMu.Unlock()
	if !regexp.MustCompile(`shutdown complete`).MatchString(logs) {
		t.Fatalf("drain did not complete cleanly; server log:\n%s", logs)
	}
	t.Logf("served %d requests, then drained cleanly on SIGTERM", served.Load())
}

// epochStraddler wraps one cluster member to force a deterministic
// mixed-epoch merge: the member's FIRST range evaluation blocks until the
// next update commit lands, so its partial share is computed one epoch
// after its sibling's and the cluster must re-fan the batch.
type epochStraddler struct {
	*engine.Replica
	mu     sync.Mutex
	armed  bool
	waiter chan struct{}
}

func (s *epochStraddler) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	s.mu.Lock()
	if !s.armed {
		s.armed = true
		ch := make(chan struct{})
		s.waiter = ch
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
	} else {
		s.mu.Unlock()
	}
	return s.Replica.AnswerRangeEpoch(ctx, keys, lo, hi)
}

func (s *epochStraddler) CommitUpdate(ctx context.Context, epoch uint64) error {
	err := s.Replica.CommitUpdate(ctx, epoch)
	s.mu.Lock()
	if s.waiter != nil {
		close(s.waiter)
		s.waiter = nil
	}
	s.mu.Unlock()
	return err
}

// TestEpochRetryObservabilityClusterTCP runs a read/update mix against a
// 2-shard cluster front over TCP and asserts the epoch-retry count the
// harness reports equals the cluster's own ErrMixedEpoch re-fan counter —
// the full observability chain (cluster counter → capability probe →
// serving stats → wire stats op → report) carries the number unchanged,
// and churn actually produced at least one retry (the straddler
// guarantees it deterministically).
func TestEpochRetryObservabilityClusterTCP(t *testing.T) {
	const rows, lanes = 2048, 4
	rep0, err := pir.NewReplica(0, loadTable(t, rows, lanes, 41))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := pir.NewReplica(0, loadTable(t, rows, lanes, 41))
	if err != nil {
		t.Fatal(err)
	}
	straddler := &epochStraddler{Replica: rep0}
	cluster, err := engine.NewCluster(
		engine.ClusterShard{Backend: straddler, Name: "shard0"},
		engine.ClusterShard{Backend: rep1, Name: "shard1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// One extra conn is reserved for updates: the straddler parks read
	// batches until the next commit, and a read blocked on a shared conn
	// would stop that commit from ever arriving (head-of-line deadlock).
	front, remotes := serveFront(t, cluster, serving.FrontConfig{
		Policy: serving.Policy{MaxBatch: 16, MaxDelay: time.Millisecond},
	}, 5)
	readConns, updateConns := remotes[:4], remotes[4:]

	cl, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := cl.Query(11)
	if err != nil {
		t.Fatal(err)
	}

	cfg := loadgen.Config{
		Seed: 43, Clients: 1_000, Rows: rows, ZipfS: 1.3,
		QPS: 400, Duration: 1500 * time.Millisecond,
		UpdateFrac: 0.15, UpdateRows: 2,
	}
	ops, err := loadgen.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The straddler needs an update to commit after the first read blocks;
	// verify the (deterministic) schedule provides one.
	firstRead, hasLaterUpdate := -1, false
	for i, op := range ops {
		if !op.Update && firstRead < 0 {
			firstRead = i
		}
		if op.Update && firstRead >= 0 {
			hasLaterUpdate = true
			break
		}
	}
	if !hasLaterUpdate {
		t.Fatal("schedule has no update after the first read; pick a different seed")
	}

	rep, err := loadgen.Run(loadgen.RunConfig{
		Targets:       asTargets(readConns),
		UpdateTargets: asTargets(updateConns),
		Schedule:      ops,
		KeyFor:        func(uint64) []byte { return key },
		// Stateless (op-derived) values: WritesFor runs concurrently.
		WritesFor: func(op loadgen.Op) []engine.RowWrite {
			writes := make([]engine.RowWrite, 2)
			for i := range writes {
				vals := make([]uint32, lanes)
				for l := range vals {
					vals[l] = uint32(op.Client*0x9e3779b9 + op.Row + uint64(i*lanes+l))
				}
				writes[i] = engine.RowWrite{Row: (op.Row + uint64(i)) % rows, Vals: vals}
			}
			return writes
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Errors > 0 {
		t.Fatalf("%d requests errored under churn", rep.Counts.Errors)
	}
	if rep.EpochRetries == 0 {
		t.Fatal("no epoch retries observed; the straddler should force at least one mixed-epoch re-fan")
	}
	if got := cluster.EpochRetries(); rep.EpochRetries != got {
		t.Fatalf("harness reported %d epoch retries, cluster counted %d", rep.EpochRetries, got)
	}
	if s := front.ServingStats(); s.EpochRetries != cluster.EpochRetries() {
		t.Fatalf("front stats report %d epoch retries, cluster counted %d", s.EpochRetries, cluster.EpochRetries())
	}
	t.Logf("read/update mix under churn: ok=%d updates-in-mix p99=%.1fms epoch-retries=%d (== cluster counter)",
		rep.Counts.OK, rep.Latency.P99, rep.EpochRetries)
}
