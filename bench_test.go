// Benchmarks: one target per paper table/figure (see DESIGN.md's
// per-experiment index). These measure the *real* Go implementation on the
// host — key generation, tree expansion, strategies, the protocol, and the
// co-design planner. The modeled V100/Xeon numbers that regenerate the
// paper's absolute values come from internal/experiments (cmd/benchall);
// the benchmarks here validate that the real code paths behind those
// models run, scale, and allocate sensibly.
package gpudpf_test

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"testing"

	"gpudpf/internal/batchpir"
	"gpudpf/internal/codesign"
	"gpudpf/internal/core"
	"gpudpf/internal/data"
	"gpudpf/internal/dpf"
	"gpudpf/internal/experiments"
	"gpudpf/internal/gpu"
	"gpudpf/internal/ml"
	"gpudpf/internal/netsim"
	"gpudpf/internal/pir"
	"gpudpf/internal/seedbaseline"
	"gpudpf/internal/strategy"
)

func benchTable(b *testing.B, rows, lanes int) *strategy.Table {
	b.Helper()
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

func benchKeys(b *testing.B, prg dpf.PRG, tab *strategy.Table, batch int) []*dpf.Key {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	keys := make([]*dpf.Key, batch)
	for q := range keys {
		k0, _, err := dpf.Gen(prg, uint64(rng.Intn(tab.NumRows)), tab.Bits(), []uint32{1}, rng)
		if err != nil {
			b.Fatal(err)
		}
		keys[q] = &k0
	}
	return keys
}

// benchKeysEarly is benchKeys at an explicit early-termination depth (0 =
// full-depth wire-v1 keys, what the frozen seed baseline expects).
func benchKeysEarly(b *testing.B, prg dpf.PRG, tab *strategy.Table, batch, early int) []*dpf.Key {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	keys := make([]*dpf.Key, batch)
	for q := range keys {
		k0, _, err := dpf.GenEarly(prg, uint64(rng.Intn(tab.NumRows)), tab.Bits(), []uint32{1}, early, rng)
		if err != nil {
			b.Fatal(err)
		}
		keys[q] = &k0
	}
	return keys
}

// BenchmarkTiledAnswer compares the seed per-query hot path (the frozen
// internal/seedbaseline walk — one aes.NewCipher per tree node, one full
// table pass per query) against the tiled/batched execution across batch
// sizes, on a 2^16-row table of 64-byte entries.
//
// The "tiled" case is the restructured MemBoundTree hot path: batched PRF
// calls (ExpandBatch through reusable key-schedule scratch instead of
// aes.NewCipher per node), pooled frontier/leaf buffers, one streaming
// table pass per tile of 32 queries (accumulateTile), and the default
// early-terminated keys (§3.1): the walk stops 2 levels up and each
// terminal seed converts into four leaf lanes, ~4× less PRF work than the
// baseline's full-depth walk. The seed baseline predates the v2 wire
// format, so it evaluates full-depth keys for the same indices. At batch
// ≥ 32 the tiled path must be ≥ 2× the per-query throughput;
// cmd/benchjson runs the same comparison programmatically, emits
// BENCH_hotpath.json, and (in CI) gates regressions against the committed
// copy.
func BenchmarkTiledAnswer(b *testing.B) {
	const rows, lanes = 1 << 16, 16
	prg := dpf.NewAESPRG()
	tab := benchTable(b, rows, lanes)
	for _, batch := range []int{1, 8, 32, 128} {
		v1Keys := benchKeysEarly(b, prg, tab, batch, 0)
		keys := benchKeys(b, prg, tab, batch)
		b.Run(fmt.Sprintf("perquery/B=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(batch) * rows * lanes * 4)
			for i := 0; i < b.N; i++ {
				_ = seedbaseline.Run(prg, v1Keys, tab, 128)
			}
		})
		b.Run(fmt.Sprintf("tiled/B=%d", batch), func(b *testing.B) {
			s := strategy.MemBoundTree{K: 128, Fused: true}
			b.ReportAllocs()
			b.SetBytes(int64(batch) * rows * lanes * 4)
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExpandLeaves measures one query's full-domain expansion with
// the terminal conversion fused into the final tree step (ExpandLeaves,
// what the scalar hot path runs) against the unfused frontier-then-convert
// pipeline, at the answer benchmark's 2^16-leaf domain.
func BenchmarkExpandLeaves(b *testing.B) {
	const bits = 16
	prg := dpf.NewAESPRG()
	rng := rand.New(rand.NewSource(5))
	k0, _, err := dpf.Gen(prg, 77, bits, []uint32{1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	var sc dpf.FrontierScratch
	out := make([]uint32, 1<<bits)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.ExpandLeaves(prg, &k0, out)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seeds, ts := sc.ExpandFrontier(prg, &k0)
			dpf.LeafValuesInto(&k0, seeds, ts, out)
		}
	})
}

// BenchmarkFig3Gen measures client-side key generation (Figure 3's cheap
// half) across domain sizes.
func BenchmarkFig3Gen(b *testing.B) {
	prg := dpf.NewAESPRG()
	rng := rand.New(rand.NewSource(3))
	for _, bits := range []int{10, 16, 20, 24} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dpf.Gen(prg, 123, bits, []uint32{1}, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Eval measures full-domain expansion (Figure 3's expensive
// half).
func BenchmarkFig3Eval(b *testing.B) {
	prg := dpf.NewAESPRG()
	rng := rand.New(rand.NewSource(4))
	for _, bits := range []int{10, 14, 16} {
		k0, _, err := dpf.Gen(prg, 7, bits, []uint32{1}, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = dpf.EvalFull(prg, &k0)
			}
		})
	}
}

// BenchmarkFig6Strategies runs each parallelization strategy for real on a
// 4K-row table (Figure 6's work/memory comparison at host scale).
func BenchmarkFig6Strategies(b *testing.B) {
	prg := dpf.NewAESPRG()
	tab := benchTable(b, 4096, 16)
	keys := benchKeys(b, prg, tab, 4)
	for _, s := range []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 128, Fused: true},
		strategy.CoopGroups{},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8KSweep measures the memory-bounded traversal across
// frontier widths (Figure 8b's ablation).
func BenchmarkFig8KSweep(b *testing.B) {
	prg := dpf.NewAESPRG()
	tab := benchTable(b, 4096, 16)
	keys := benchKeys(b, prg, tab, 2)
	for _, k := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			s := strategy.MemBoundTree{K: k, Fused: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Batch measures batched execution across batch sizes
// (Figure 9a).
func BenchmarkFig9Batch(b *testing.B) {
	prg := dpf.NewSipPRG() // fastest PRF keeps the sweep affordable
	tab := benchTable(b, 4096, 16)
	for _, batch := range []int{1, 4, 16} {
		keys := benchKeys(b, prg, tab, batch)
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			s := strategy.MemBoundTree{K: 128, Fused: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Model exercises the analytic throughput/latency model the
// Figure 13 frontier is drawn from.
func BenchmarkFig13Model(b *testing.B) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	s := strategy.MemBoundTree{K: 128, Fused: true}
	for i := 0; i < b.N; i++ {
		if _, err := s.Model(dev, prg, 20, 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Fusion compares fused and unfused execution on wide
// entries (Figure 14).
func BenchmarkFig14Fusion(b *testing.B) {
	prg := dpf.NewAESPRG()
	tab := benchTable(b, 2048, 128) // 512B entries
	keys := benchKeys(b, prg, tab, 2)
	for _, fused := range []bool{true, false} {
		b.Run(fmt.Sprintf("fused=%v", fused), func(b *testing.B) {
			s := strategy.MemBoundTree{K: 128, Fused: fused}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4CPU measures the real host CPU baseline single- and
// multi-threaded (Table 4's CPU rows, at host scale).
func BenchmarkTable4CPU(b *testing.B) {
	prg := dpf.NewAESPRG()
	tab := benchTable(b, 16384, 64) // the 16K row of Table 4
	keys := benchKeys(b, prg, tab, 1)
	for _, threads := range []int{1, 32} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			s := strategy.CPUBaseline{Threads: threads}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ctr gpu.Counters
				if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5PRFs measures raw PRG expansion throughput per PRF
// (Table 5's real-code analogue; the modeled GPU numbers use the per-PRF
// cycle constants).
func BenchmarkTable5PRFs(b *testing.B) {
	for _, name := range dpf.AllPRGNames() {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var s dpf.Seed
			b.ReportAllocs()
			b.SetBytes(32)
			for i := 0; i < b.N; i++ {
				l, _, _, _ := prg.Expand(s)
				s = l
			}
		})
	}
}

// BenchmarkFig11EndToEnd runs a real private inference through the core
// service (the protocol behind Figure 11/Table 3).
func BenchmarkFig11EndToEnd(b *testing.B) {
	const items, dim = 2048, 16
	freq := make([]int64, items)
	for i := range freq {
		freq[i] = int64(items - i)
	}
	layout, err := codesign.BuildLayout(items, dim, freq, nil, codesign.Params{
		C: 0, HotRows: 128, QHot: 4, QFull: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	emb := make([][]float32, items)
	for i := range emb {
		emb[i] = make([]float32, dim)
	}
	svc, err := core.New(core.Config{Layout: layout, Freq: freq, Link: netsim.LAN(), Seed: 5}, emb)
	if err != nil {
		b.Fatal(err)
	}
	wanted := []uint64{1, 50, 400, 900, 1500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.FetchEmbeddings(wanted); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Trace measures the latency-model bookkeeping per inference
// (Figure 12's breakdown machinery).
func BenchmarkFig12Trace(b *testing.B) {
	link := netsim.FourG()
	for i := 0; i < b.N; i++ {
		_ = link.RoundTrip(10<<10, 20<<10)
	}
}

// BenchmarkFig16Plan measures the co-design inference planner (the per-
// inference client work behind Figures 16–20).
func BenchmarkFig16Plan(b *testing.B) {
	const items = 16384
	freq := make([]int64, items)
	co := make([][]uint64, items)
	for i := range freq {
		freq[i] = int64(items - i)
		if i+1 < items {
			co[i] = []uint64{uint64(i + 1)}
		}
	}
	layout, err := codesign.BuildLayout(items, 16, freq, co, codesign.Params{
		C: 2, HotRows: 1024, QHot: 8, QFull: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := randv2.New(randv2.NewPCG(6, 0))
	wanted := make([]uint64, 24)
	for i := range wanted {
		wanted[i] = uint64(rng.IntN(items))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Plan(wanted, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17GridPoint measures one grid-search point: layout build +
// cost model (Figure 17's sweep unit).
func BenchmarkFig17GridPoint(b *testing.B) {
	const items = 8192
	freq := make([]int64, items)
	for i := range freq {
		freq[i] = int64(items - i)
	}
	for i := 0; i < b.N; i++ {
		l, err := codesign.BuildLayout(items, 16, freq, nil, codesign.Params{
			C: 0, HotRows: 819, QHot: 8, QFull: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = l.Cost()
	}
}

// BenchmarkFig18LMScore measures the LM quality evaluation behind
// Figure 18's points.
func BenchmarkFig18LMScore(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := ml.NewLSTM(256, 16, 16, rng)
	tokens := make([]int, 128)
	for i := range tokens {
		tokens[i] = rng.Intn(256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.NLL(tokens, nil)
	}
}

// BenchmarkFig19RecScore measures the recommendation quality evaluation
// behind Figure 19/20's points.
func BenchmarkFig19RecScore(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	emb := ml.NewEmbedding(2048, 16, rng)
	mlp := ml.NewMLP(16, 24, rng)
	hist := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	x := make(ml.Vec, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb.Bag(x, hist, nil)
		_ = mlp.Predict(x)
	}
}

// BenchmarkFig20BatchPIR measures a full PBR round (the protocol unit the
// Taobao figure sweeps).
func BenchmarkFig20BatchPIR(b *testing.B) {
	cfg := batchpir.Config{NumRows: 4096, BinSize: 256}
	tabP, err := pir.NewTable(cfg.NumRows, 16)
	if err != nil {
		b.Fatal(err)
	}
	s0, err := batchpir.NewServer(0, tabP, cfg, pir.WithPRG("siphash"))
	if err != nil {
		b.Fatal(err)
	}
	s1, err := batchpir.NewServer(1, tabP, cfg, pir.WithPRG("siphash"))
	if err != nil {
		b.Fatal(err)
	}
	c, err := batchpir.NewClient("siphash", cfg, randv2.New(randv2.NewPCG(9, 0)))
	if err != nil {
		b.Fatal(err)
	}
	ts := &batchpir.TwoServer{Client: c, S0: s0, S1: s1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ts.Fetch([]uint64{3, 700, 2900}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab1Tab2Inventory regenerates the static inventory tables.
func BenchmarkTab1Tab2Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataGen measures synthetic dataset generation throughput.
func BenchmarkDataGen(b *testing.B) {
	cfg := data.RecConfig{
		Name: "bench", Items: 2048, Genres: 8, Candidates: 64,
		HistoryLen: 16, ZipfS: 1.2, Train: 200, Test: 50, SessionLen: 4, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := data.GenRec(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
